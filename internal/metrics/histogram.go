// Package metrics provides the measurement machinery used by the simulator
// and the experiment harness: an HDR-style latency histogram with bounded
// relative error, summary statistics, windowed tail-latency tracking, and
// time-series recording.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"slices"
	"sync"
)

// Histogram records int64 values (typically latencies in nanoseconds) into
// log-linear buckets, HDR-histogram style: values are grouped by their
// highest set bit into exponential tiers, and each tier is split into
// 2^subBits linear sub-buckets, bounding the relative quantile error at
// 2^-subBits (≈0.8% with the default 7 sub-bits).
//
// The zero value is not usable; call NewHistogram.
type Histogram struct {
	subBits uint
	counts  []uint64
	total   uint64
	sum     float64
	sumSq   float64
	min     int64
	max     int64
}

const defaultSubBits = 7

// NewHistogram returns an empty histogram with ~0.8% relative error.
func NewHistogram() *Histogram { return NewHistogramPrecision(defaultSubBits) }

// NewHistogramPrecision returns an empty histogram with 2^-subBits relative
// error. subBits must be in [1, 16].
func NewHistogramPrecision(subBits uint) *Histogram {
	if subBits < 1 || subBits > 16 {
		panic(fmt.Sprintf("metrics: subBits %d out of range [1,16]", subBits))
	}
	// 64 tiers (one per possible highest bit) each with 2^subBits buckets
	// covers the whole non-negative int64 range.
	return &Histogram{
		subBits: subBits,
		counts:  make([]uint64, 64<<subBits),
		min:     math.MaxInt64,
		max:     math.MinInt64,
	}
}

// bucketIndex maps a non-negative value to its bucket.
func (h *Histogram) bucketIndex(v int64) int {
	u := uint64(v)
	// Values below 2^subBits land in tier 0 linearly.
	if u < 1<<h.subBits {
		return int(u)
	}
	tier := uint(bits.Len64(u)) - 1 - h.subBits // >= 1
	sub := (u >> tier) & ((1 << h.subBits) - 1)
	return int((uint64(tier+1) << h.subBits) + sub)
}

// bucketLow returns the lowest value that maps to bucket i.
func (h *Histogram) bucketLow(i int) int64 {
	tier := uint(i) >> h.subBits
	sub := uint64(i) & ((1 << h.subBits) - 1)
	if tier == 0 {
		return int64(sub)
	}
	shift := tier - 1
	return int64(((1 << h.subBits) + sub) << shift)
}

// bucketHigh returns the highest value that maps to bucket i.
func (h *Histogram) bucketHigh(i int) int64 {
	tier := uint(i) >> h.subBits
	if tier == 0 {
		return h.bucketLow(i)
	}
	return h.bucketLow(i) + (1 << (tier - 1)) - 1
}

// Record adds a value. Negative values are clamped to zero: latencies are
// never negative, and a clamp keeps accounting robust in the face of
// rounding at callers.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[h.bucketIndex(v)]++
	h.total++
	f := float64(v)
	h.sum += f
	h.sumSq += f * f
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.total }

// Sum returns the sum of recorded values.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the arithmetic mean, or 0 for an empty histogram.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Stddev returns the population standard deviation, or 0 when empty.
func (h *Histogram) Stddev() float64 {
	if h.total == 0 {
		return 0
	}
	m := h.Mean()
	v := h.sumSq/float64(h.total) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Min returns the smallest recorded value, or 0 when empty.
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value, or 0 when empty.
func (h *Histogram) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Quantile returns an estimate of the q-quantile (q in [0, 1]) with
// relative error bounded by the histogram precision. Empty histograms
// return 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	// Rank of the desired observation, 1-based, nearest-rank definition.
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			// Midpoint of the bucket, clamped to observed extremes so
			// estimates never exceed the true min/max. low+(high-low)/2:
			// the top buckets sit near MaxInt64, where low+high overflows.
			low := h.bucketLow(i)
			mid := low + (h.bucketHigh(i)-low)/2
			if mid < h.min {
				mid = h.min
			}
			if mid > h.max {
				mid = h.max
			}
			return mid
		}
	}
	return h.Max()
}

// P50, P95, P99 and P999 are conveniences for the common quantiles.
func (h *Histogram) P50() int64  { return h.Quantile(0.50) }
func (h *Histogram) P95() int64  { return h.Quantile(0.95) }
func (h *Histogram) P99() int64  { return h.Quantile(0.99) }
func (h *Histogram) P999() int64 { return h.Quantile(0.999) }

// CountAbove returns how many recorded values are (approximately) greater
// than threshold. Values sharing the threshold's bucket are counted as
// above only if the bucket's low bound exceeds the threshold, giving a
// conservative (under-)estimate consistent with bucket precision.
func (h *Histogram) CountAbove(threshold int64) uint64 {
	if threshold < 0 {
		return h.total
	}
	var n uint64
	start := h.bucketIndex(threshold) + 1
	for i := start; i < len(h.counts); i++ {
		n += h.counts[i]
	}
	return n
}

// Reset clears the histogram for reuse without reallocating.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
	h.sumSq = 0
	h.min = math.MaxInt64
	h.max = math.MinInt64
}

// Merge adds other's recorded values into h. The histograms must have the
// same precision.
func (h *Histogram) Merge(other *Histogram) {
	if h.subBits != other.subBits {
		panic("metrics: merging histograms of different precision")
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	h.sumSq += other.sumSq
	if other.total > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    int64   // upper bound of the bucket
	Fraction float64 // fraction of observations <= Value
}

// CDF returns the empirical cumulative distribution over the non-empty
// buckets, suitable for plotting (e.g. Figure 14 of the paper).
func (h *Histogram) CDF() []CDFPoint {
	if h.total == 0 {
		return nil
	}
	var out []CDFPoint
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		v := h.bucketHigh(i)
		if v > h.max {
			v = h.max
		}
		out = append(out, CDFPoint{Value: v, Fraction: float64(cum) / float64(h.total)})
	}
	return out
}

// Summary is a point-in-time digest of a histogram.
type Summary struct {
	Count              uint64
	Mean, Stddev       float64
	Min, P50, P95, P99 int64
	P999, Max          int64
}

// Summarize extracts a Summary.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.total, Mean: h.Mean(), Stddev: h.Stddev(),
		Min: h.Min(), P50: h.P50(), P95: h.P95(), P99: h.P99(),
		P999: h.P999(), Max: h.Max(),
	}
}

// quantileScratch recycles the sort buffer ExactQuantile copies samples
// into. A sync.Pool (rather than a package-level slice) keeps the
// function safe under harness.RunAll's concurrent scenario workers.
var quantileScratch = sync.Pool{New: func() any { return new([]int64) }}

// ExactQuantile computes the nearest-rank q-quantile of a raw sample slice.
// It is used by tests to validate Histogram and by small-sample paths (the
// long-term safeguard's 500 ms windows) where exactness is cheap. The
// input is never mutated; the sorted copy lives in a reused scratch
// buffer, so steady-state calls do not allocate.
func ExactQuantile(samples []int64, q float64) int64 {
	if len(samples) == 0 {
		return 0
	}
	bufp := quantileScratch.Get().(*[]int64)
	s := append((*bufp)[:0], samples...)
	slices.Sort(s)
	v := s[len(s)-1]
	if q < 1 {
		rank := max(int(math.Ceil(q*float64(len(s)))), 1)
		v = s[rank-1]
	}
	*bufp = s
	quantileScratch.Put(bufp)
	return v
}
