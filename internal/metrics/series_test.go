package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCounterAverage(t *testing.T) {
	var c Counter
	c.Set(0, 2)
	c.Set(10, 4) // value 2 for 10ns
	c.Set(30, 0) // value 4 for 20ns
	// average over [0,30] = (2*10 + 4*20) / 30 = 100/30
	got := c.Average(30)
	want := 100.0 / 30.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("average = %v, want %v", got, want)
	}
	// Extending with value 0 for another 70ns: 100/100 = 1.
	if got := c.Average(100); math.Abs(got-1) > 1e-12 {
		t.Fatalf("average(100) = %v", got)
	}
}

func TestCounterIntegral(t *testing.T) {
	var c Counter
	c.Set(5, 3)
	if c.Integral(15) != 30 {
		t.Fatalf("integral = %v", c.Integral(15))
	}
	var empty Counter
	if empty.Integral(100) != 0 {
		t.Fatal("empty counter integral not 0")
	}
}

func TestCounterBeforeStart(t *testing.T) {
	var c Counter
	if c.Average(100) != 0 {
		t.Fatal("unstarted counter average not 0")
	}
	c.Set(50, 7)
	if c.Average(50) != 7 {
		t.Fatal("zero-elapsed average should be current value")
	}
	if c.Value() != 7 {
		t.Fatal("value")
	}
}

func TestCounterTimeBackwardsPanics(t *testing.T) {
	var c Counter
	c.Set(10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on time going backwards")
		}
	}()
	c.Set(5, 2)
}

func TestSeriesBasics(t *testing.T) {
	var s Series
	if s.Max() != 0 || s.Mean() != 0 {
		t.Fatal("empty series stats")
	}
	s.Add(1, 2)
	s.Add(2, 8)
	s.Add(3, 5)
	if s.Len() != 3 || s.Max() != 8 || s.Mean() != 5 {
		t.Fatalf("series stats: len %d max %v mean %v", s.Len(), s.Max(), s.Mean())
	}
}

func TestSeriesDownsample(t *testing.T) {
	var s Series
	for i := 0; i < 100; i++ {
		s.Add(int64(i), float64(i))
	}
	d := s.Downsample(10)
	if d.Len() != 10 {
		t.Fatalf("downsampled to %d points", d.Len())
	}
	// Chunk means preserve the overall mean.
	if math.Abs(d.Mean()-s.Mean()) > 1e-9 {
		t.Fatalf("downsample changed mean: %v vs %v", d.Mean(), s.Mean())
	}
	// Downsample with n >= len returns a copy, not an alias.
	cp := s.Downsample(1000)
	cp.Points[0].Value = -1
	if s.Points[0].Value == -1 {
		t.Fatal("Downsample aliased the input")
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Stddev() != 0 || w.Min() != 0 || w.Max() != 0 {
		t.Fatal("empty welford")
	}
	for _, v := range []float64{10, 20, 30, 40, 50} {
		w.Add(v)
	}
	if w.Count() != 5 || w.Mean() != 30 {
		t.Fatalf("welford mean %v count %d", w.Mean(), w.Count())
	}
	if math.Abs(w.Stddev()-math.Sqrt(200)) > 1e-9 {
		t.Fatalf("welford stddev %v", w.Stddev())
	}
	if w.Min() != 10 || w.Max() != 50 {
		t.Fatal("welford extremes")
	}
}

// Property: Welford matches the naive two-pass computation.
func TestWelfordProperty(t *testing.T) {
	if err := quick.Check(func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		sum := 0.0
		for _, v := range raw {
			w.Add(float64(v))
			sum += float64(v)
		}
		mean := sum / float64(len(raw))
		varSum := 0.0
		for _, v := range raw {
			d := float64(v) - mean
			varSum += d * d
		}
		wantStd := math.Sqrt(varSum / float64(len(raw)))
		return math.Abs(w.Mean()-mean) < 1e-6 && math.Abs(w.Stddev()-wantStd) < 1e-6
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
