package metrics

import (
	"testing"
)

// FuzzHistogramQuantile records a fuzz-derived sample set — spanning the
// full non-negative int64 dynamic range — into a Histogram at a
// fuzz-chosen precision and cross-checks every quantile estimate against
// ExactQuantile on the raw samples. The documented contract: relative
// error bounded by the bucket precision 2^-subBits (plus one count of
// integer-rounding slop in the linear region).
func FuzzHistogramQuantile(f *testing.F) {
	f.Add(uint8(7), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add(uint8(1), []byte{0xff, 0xff, 0x00, 0x00, 0x80, 0x40})
	f.Add(uint8(16), []byte("latency latency latency spike \xff\xfe\xfd"))
	f.Add(uint8(3), []byte{})

	f.Fuzz(func(t *testing.T, subBitsRaw uint8, data []byte) {
		subBits := uint(1 + subBitsRaw%16) // [1, 16]
		h := NewHistogramPrecision(subBits)

		// Two bytes per sample: the first picks between a small linear
		// value and a shifted wide-range value, the second the magnitude.
		// This covers both the exact (linear) buckets and the logarithmic
		// region up to ~2^62.
		var samples []int64
		for i := 0; i+1 < len(data) && len(samples) < 4096; i += 2 {
			b0, b1 := data[i], data[i+1]
			var v int64
			if b0&0x80 != 0 {
				v = int64(b1) // linear region
			} else {
				v = int64((uint64(b1) + 1) << (b0 % 55))
			}
			h.Record(v)
			samples = append(samples, v)
		}
		// A trailing odd byte exercises the negative-clamp path.
		if len(data)%2 == 1 {
			h.Record(-int64(data[len(data)-1]))
			samples = append(samples, 0) // Record clamps negatives to zero
		}
		if len(samples) == 0 {
			if h.Quantile(0.5) != 0 {
				t.Fatalf("empty histogram Quantile = %d, want 0", h.Quantile(0.5))
			}
			return
		}
		if h.Count() != uint64(len(samples)) {
			t.Fatalf("Count = %d, want %d", h.Count(), len(samples))
		}

		for _, q := range []float64{0, 0.001, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
			got := h.Quantile(q)
			exact := ExactQuantile(samples, q)
			diff := got - exact
			if diff < 0 {
				diff = -diff
			}
			// Bucket width is at most exact*2^-subBits, and the estimate
			// is the bucket midpoint clamped to observed extremes, so it
			// can be off by at most a bucket width; +1 absorbs the
			// midpoint's integer floor.
			bound := int64(float64(exact)*quantileRelBound(subBits)) + 1
			if diff > bound {
				t.Fatalf("q=%v subBits=%d: Quantile %d vs exact %d (diff %d > bound %d, n=%d)",
					q, subBits, got, exact, diff, bound, len(samples))
			}
		}
	})
}

// quantileRelBound is the documented relative-error bound for a given
// precision: one part in 2^subBits.
func quantileRelBound(subBits uint) float64 {
	return 1 / float64(uint64(1)<<subBits)
}
