// Package textplot renders small multi-series scatter/line charts as
// text, so the experiment reports can show the paper's figures — P99
// versus harvested cores scatters, reassignment-latency CDFs, square-wave
// time series — directly in a terminal and in the results files.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Point is one sample of a series.
type Point struct {
	X, Y float64
}

// Series is a named point set; the Glyph (one rune) marks its points.
type Series struct {
	Name   string
	Glyph  rune
	Points []Point
}

// defaultGlyphs are assigned to series without an explicit glyph.
var defaultGlyphs = []rune{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Options control rendering.
type Options struct {
	// Width and Height are the plot area size in characters (default
	// 56x16).
	Width, Height int
	// Title is printed above the plot.
	Title string
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
	// LogY plots the Y axis logarithmically (useful for latency).
	LogY bool
	// YMin/YMax fix the Y range; both zero means auto-scale.
	YMin, YMax float64
}

func (o *Options) applyDefaults() {
	if o.Width <= 0 {
		o.Width = 56
	}
	if o.Height <= 0 {
		o.Height = 16
	}
	if o.Width < 16 {
		o.Width = 16
	}
	if o.Height < 4 {
		o.Height = 4
	}
}

// Render draws the series onto a character grid with axes and a legend.
// Series with no points are skipped; an empty plot returns a note instead
// of axes.
func Render(series []Series, opts Options) string {
	opts.applyDefaults()
	var pts int
	for _, s := range series {
		pts += len(s.Points)
	}
	if pts == 0 {
		return "(no data)\n"
	}

	// Data ranges.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, p := range s.Points {
			minX = math.Min(minX, p.X)
			maxX = math.Max(maxX, p.X)
			minY = math.Min(minY, p.Y)
			maxY = math.Max(maxY, p.Y)
		}
	}
	if opts.YMin != 0 || opts.YMax != 0 {
		minY, maxY = opts.YMin, opts.YMax
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	yOf := func(v float64) float64 { return v }
	if opts.LogY {
		floor := minY
		if floor <= 0 {
			floor = 1e-9
		}
		yOf = func(v float64) float64 { return math.Log(math.Max(v, floor)) }
	}
	loY, hiY := yOf(minY), yOf(maxY)
	if hiY == loY {
		hiY = loY + 1
	}

	grid := make([][]rune, opts.Height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", opts.Width))
	}
	for si, s := range series {
		glyph := s.Glyph
		if glyph == 0 {
			glyph = defaultGlyphs[si%len(defaultGlyphs)]
		}
		for _, p := range s.Points {
			col := int(math.Round((p.X - minX) / (maxX - minX) * float64(opts.Width-1)))
			row := int(math.Round((yOf(p.Y) - loY) / (hiY - loY) * float64(opts.Height-1)))
			if col < 0 || col >= opts.Width || row < 0 || row >= opts.Height {
				continue
			}
			r := opts.Height - 1 - row
			grid[r][col] = glyph
		}
	}

	var b strings.Builder
	if opts.Title != "" {
		fmt.Fprintf(&b, "%s\n", opts.Title)
	}
	yHiLabel := fmtNum(maxY)
	yLoLabel := fmtNum(minY)
	margin := len(yHiLabel)
	if len(yLoLabel) > margin {
		margin = len(yLoLabel)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", margin)
		if i == 0 {
			label = pad(yHiLabel, margin)
		}
		if i == len(grid)-1 {
			label = pad(yLoLabel, margin)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", margin), strings.Repeat("-", opts.Width))
	// X range line.
	lo, hi := fmtNum(minX), fmtNum(maxX)
	gap := opts.Width - len(lo) - len(hi)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", margin), lo, strings.Repeat(" ", gap), hi)
	if opts.XLabel != "" || opts.YLabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s", strings.Repeat(" ", margin), opts.XLabel, opts.YLabel)
		if opts.LogY {
			b.WriteString(" (log)")
		}
		b.WriteByte('\n')
	}
	// Legend.
	var legend []string
	for si, s := range series {
		if len(s.Points) == 0 {
			continue
		}
		glyph := s.Glyph
		if glyph == 0 {
			glyph = defaultGlyphs[si%len(defaultGlyphs)]
		}
		legend = append(legend, fmt.Sprintf("%c %s", glyph, s.Name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", margin), strings.Join(legend, "   "))
	}
	return b.String()
}

// pad right-aligns s to width.
func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return strings.Repeat(" ", width-len(s)) + s
}

// fmtNum formats an axis bound compactly.
func fmtNum(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case av >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	case av >= 10:
		return fmt.Sprintf("%.0f", v)
	case av >= 0.01:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}
