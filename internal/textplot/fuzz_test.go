package textplot

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// Property: Render never panics and always terminates with a newline, for
// arbitrary point sets including NaN-free extremes and degenerate ranges.
func TestRenderNeverPanics(t *testing.T) {
	if err := quick.Check(func(xs, ys []int16, w, h uint8) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		pts := make([]Point, 0, n)
		for i := 0; i < n; i++ {
			pts = append(pts, Point{X: float64(xs[i]), Y: float64(ys[i])})
		}
		out := Render([]Series{{Name: "s", Points: pts}}, Options{
			Width: int(w), Height: int(h),
		})
		return strings.HasSuffix(out, "\n")
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: every rendered grid line has the same visible width, so the
// plots align in fixed-width output.
func TestRenderAlignment(t *testing.T) {
	out := Render([]Series{
		{Name: "a", Points: []Point{{0, 1}, {5, 100}, {9, 3}}},
		{Name: "b", Points: []Point{{2, 50}}},
	}, Options{Width: 40, Height: 10})
	var gridWidths []int
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "|") {
			gridWidths = append(gridWidths, len([]rune(line)))
		}
	}
	if len(gridWidths) != 10 {
		t.Fatalf("grid lines %d", len(gridWidths))
	}
	for _, w := range gridWidths[1:] {
		if w != gridWidths[0] {
			t.Fatalf("ragged grid: %v", gridWidths)
		}
	}
}

func TestRenderHugeValues(t *testing.T) {
	out := Render([]Series{
		{Name: "s", Points: []Point{{0, 1e12}, {1, 2e12}}},
	}, Options{Width: 30, Height: 6})
	if !strings.Contains(out, "G") { // gigascale axis labels
		t.Errorf("axis labels not compacted:\n%s", out)
	}
	if math.IsNaN(float64(len(out))) { // trivially false; keeps math import honest
		t.Fatal("unreachable")
	}
}
