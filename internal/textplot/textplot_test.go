package textplot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	out := Render([]Series{
		{Name: "a", Points: []Point{{0, 0}, {1, 1}, {2, 4}}},
		{Name: "b", Points: []Point{{0, 4}, {2, 0}}},
	}, Options{Title: "demo", Width: 30, Height: 8, XLabel: "x", YLabel: "y"})
	for _, want := range []string{"demo", "* a", "+ b", "x: x   y: y"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Plot area has the requested height (+ title, axis, labels, legend).
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+8+1+1+1+1 {
		t.Errorf("line count %d:\n%s", len(lines), out)
	}
}

func TestRenderEmpty(t *testing.T) {
	if got := Render(nil, Options{}); got != "(no data)\n" {
		t.Fatalf("empty = %q", got)
	}
	if got := Render([]Series{{Name: "x"}}, Options{}); got != "(no data)\n" {
		t.Fatalf("empty series = %q", got)
	}
}

func TestRenderGlyphPlacement(t *testing.T) {
	// A single point must land at the plot's corners when at the data
	// extremes.
	out := Render([]Series{
		{Name: "lo", Glyph: 'L', Points: []Point{{0, 0}}},
		{Name: "hi", Glyph: 'H', Points: []Point{{10, 10}}},
	}, Options{Width: 20, Height: 5})
	lines := strings.Split(out, "\n")
	// First grid line holds H at the right edge, last holds L at left.
	if !strings.Contains(lines[0], "H") {
		t.Errorf("no H on top row: %q", lines[0])
	}
	if !strings.Contains(lines[4], "L") {
		t.Errorf("no L on bottom row: %q", lines[4])
	}
	hCol := strings.IndexRune(lines[0], 'H')
	lCol := strings.IndexRune(lines[4], 'L')
	if hCol <= lCol {
		t.Errorf("H at %d should be right of L at %d", hCol, lCol)
	}
}

func TestRenderLogY(t *testing.T) {
	// With LogY, points at 1, 10, 100 are evenly spaced vertically.
	out := Render([]Series{
		{Name: "s", Glyph: '*', Points: []Point{{0, 1}, {1, 10}, {2, 100}}},
	}, Options{Width: 21, Height: 9, LogY: true})
	lines := strings.Split(out, "\n")
	var rows []int
	for i, line := range lines {
		if strings.Contains(line, "|") && strings.Contains(line, "*") {
			rows = append(rows, i)
		}
	}
	if len(rows) != 3 {
		t.Fatalf("points on %d rows:\n%s", len(rows), out)
	}
	if (rows[1] - rows[0]) != (rows[2] - rows[1]) {
		t.Errorf("log spacing uneven: rows %v\n%s", rows, out)
	}
}

func TestRenderFixedYRange(t *testing.T) {
	out := Render([]Series{
		{Name: "s", Points: []Point{{0, 5}}},
	}, Options{Width: 20, Height: 5, YMin: 0, YMax: 10})
	if !strings.Contains(out, "10 |") {
		t.Errorf("fixed y max missing:\n%s", out)
	}
}

func TestRenderDegenerateRanges(t *testing.T) {
	// Identical X and Y across all points must not divide by zero.
	out := Render([]Series{
		{Name: "s", Points: []Point{{5, 7}, {5, 7}}},
	}, Options{Width: 20, Height: 5})
	if !strings.Contains(out, "*") {
		t.Errorf("degenerate plot lost its point:\n%s", out)
	}
}

func TestFmtNum(t *testing.T) {
	cases := map[float64]string{
		0:         "0",
		2_500_000: "2.5M",
		3_000:     "3.0k",
		42:        "42",
		0.5:       "0.50",
		0.0001:    "0.0001",
		1.5e9:     "1.5G",
	}
	for in, want := range cases {
		if got := fmtNum(in); got != want {
			t.Errorf("fmtNum(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestDefaultGlyphCycle(t *testing.T) {
	series := make([]Series, 10)
	for i := range series {
		series[i] = Series{Name: strings.Repeat("s", i+1), Points: []Point{{float64(i), float64(i)}}}
	}
	out := Render(series, Options{Width: 30, Height: 10})
	// Glyphs repeat after the palette is exhausted; just check the
	// legend mentions every series.
	for i := range series {
		if !strings.Contains(out, series[i].Name) {
			t.Errorf("legend missing series %d", i)
		}
	}
}
