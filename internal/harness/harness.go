// Package harness assembles full SmartHarvest experiments: it builds the
// simulated machine, the primary VMs and their workloads, the ElasticVM
// and its batch workload, and the EVMAgent with a chosen policy; runs the
// simulation for a configured duration; and collects the metrics the
// paper's tables and figures report.
package harness

import (
	"fmt"
	"sort"

	"smartharvest/internal/apps"
	"smartharvest/internal/check"
	"smartharvest/internal/core"
	"smartharvest/internal/faults"
	"smartharvest/internal/hypervisor"
	"smartharvest/internal/market"
	"smartharvest/internal/metrics"
	"smartharvest/internal/obs"
	"smartharvest/internal/sim"
	"smartharvest/internal/simrng"
	"smartharvest/internal/workload"
)

// BatchKind selects the ElasticVM workload.
type BatchKind int

const (
	// BatchCPUBully runs the synthetic all-you-can-eat consumer.
	BatchCPUBully BatchKind = iota
	// BatchHDInsight runs the ML-training job to completion.
	BatchHDInsight
	// BatchTeraSort runs the sort job to completion.
	BatchTeraSort
	// BatchFinite runs a finite CPU allotment (Scenario.BatchWork) with
	// checkpointed progress — the fleet scheduler's job unit
	// (apps.FiniteWork), runnable standalone for calibration.
	BatchFinite
	// BatchNone leaves the ElasticVM idle.
	BatchNone
)

func (b BatchKind) String() string {
	switch b {
	case BatchCPUBully:
		return "cpubully"
	case BatchHDInsight:
		return "hdinsight"
	case BatchTeraSort:
		return "terasort"
	case BatchFinite:
		return "finite"
	case BatchNone:
		return "none"
	default:
		return fmt.Sprintf("BatchKind(%d)", int(b))
	}
}

// ParseBatchKind is the inverse of String.
func ParseBatchKind(s string) (BatchKind, error) {
	switch s {
	case "cpubully":
		return BatchCPUBully, nil
	case "hdinsight":
		return BatchHDInsight, nil
	case "terasort":
		return BatchTeraSort, nil
	case "finite":
		return BatchFinite, nil
	case "none":
		return BatchNone, nil
	default:
		return 0, fmt.Errorf("harness: unknown batch kind %q (want cpubully, hdinsight, terasort, finite, or none)", s)
	}
}

// MarshalText implements encoding.TextMarshaler.
func (b BatchKind) MarshalText() ([]byte, error) {
	if b < BatchCPUBully || b > BatchNone {
		return nil, fmt.Errorf("harness: cannot marshal %s", b)
	}
	return []byte(b.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (b *BatchKind) UnmarshalText(text []byte) error {
	v, err := ParseBatchKind(string(text))
	if err != nil {
		return err
	}
	*b = v
	return nil
}

// ControllerFactory builds a policy for a primary allocation.
type ControllerFactory func(alloc int) core.Controller

// Scenario fully describes one experiment run.
type Scenario struct {
	// Name labels output.
	Name string
	// Primaries run one per 10-core VM (PrimaryVMCores overridable).
	Primaries []apps.PrimarySpec
	// PrimaryVMCores is the allocation per primary VM (default 10).
	PrimaryVMCores int
	// ElasticMin is the ElasticVM's minimum core count (default 1).
	ElasticMin int
	// Batch selects the ElasticVM workload (default CPUBully).
	Batch BatchKind
	// BatchWork is the finite allotment for BatchFinite, in core-time
	// (default 8 s); ignored for other kinds.
	BatchWork sim.Time
	// BatchWidth caps BatchFinite's parallelism in cores (default 0 =
	// every ElasticVM vCPU); ignored for other kinds.
	BatchWidth int
	// Mechanism selects cpugroups or IPIs (default cpugroups).
	Mechanism hypervisor.Mechanism
	// Controller builds the policy (default SmartHarvest).
	Controller ControllerFactory
	// Predictor selects the SmartHarvest peak predictor for the default
	// controller (default CSOAA, the paper's learner). Setting it
	// together with an explicit Controller is rejected
	// (ErrPredictorConflict): the predictor rides inside the default
	// SmartHarvest controller, so an explicit factory would silently
	// ignore it. Use SmartHarvestPredictorFactory to combine the two.
	Predictor PredictorKind
	// Duration is the measured run length (default 20 s simulated).
	Duration sim.Time
	// Warmup precedes Duration; latencies and harvest averages exclude
	// it (default 2 s).
	Warmup sim.Time
	// Window overrides the agent's learning window (default 25 ms).
	Window sim.Time
	// PollInterval overrides the busy-poll period (default 50 µs).
	PollInterval sim.Time
	// LongTermSafeguard enables the QoS guard (meaningful for policies
	// with Safeguards(); default on for SmartHarvest-like policies).
	LongTermSafeguard bool
	// CollectBusyStats additionally samples busy primary cores at the
	// poll interval to produce Table 1's statistics.
	CollectBusyStats bool
	// RecordSeries captures per-window target/peak series (Figure 7).
	RecordSeries bool
	// QoSWaitThreshold and QoSViolationFrac override the long-term
	// safeguard's trip criterion when non-zero (used by the safeguard
	// sensitivity ablation).
	QoSWaitThreshold sim.Time
	QoSViolationFrac float64
	// Churn schedules primary-VM arrivals and departures during the run,
	// exercising the paper's observation that tenants "arrive/depart at
	// any time". The machine is sized for the maximum concurrent
	// allocation; cores belonging to departed (or not-yet-arrived)
	// tenants are unallocated and flow to the ElasticVM.
	Churn []ChurnEvent
	// Seed drives all randomness.
	Seed uint64
	// Observer receives the run's typed event stream (window decisions,
	// safeguard/QoS trips, resizes, churn, batch progress). Nil disables
	// observation at zero cost. Events are delivered synchronously on the
	// simulation goroutine, so a deterministic scenario produces a
	// byte-identical trace regardless of RunAll parallelism.
	Observer obs.Observer
	// Checker, when non-nil, verifies the run's event stream against the
	// safety invariants (see internal/check). Run binds it to the resolved
	// scenario, chains it after Observer, folds the hypervisor's end-of-run
	// state check into it, and reports the outcome in Result.Check. A
	// Checker verifies exactly one run; reuse is rejected at Bind.
	Checker *check.Checker
	// Faults injects deterministic hypervisor/signal/agent faults (see
	// internal/faults). The zero Plan is disabled and draws nothing from
	// the scenario RNG, so fault-free runs stay byte-identical.
	Faults faults.Plan
	// Pools is a harvested-capacity pool plan (see internal/market).
	// Pools are an economy over a fleet's shared harvest; a single-server
	// scenario has no fleet scheduler to run them, so any non-zero plan
	// is rejected up front rather than silently ignored.
	Pools market.Config
	// Resilience overrides the agent's fault-response policy; nil keeps
	// core.DefaultResilience.
	Resilience *core.ResiliencePolicy
}

// ScenarioOption adjusts a Scenario at Run time without mutating the
// caller's copy — the functional-option face of the same knobs.
type ScenarioOption func(*Scenario)

// WithObserver attaches an observer to the run.
func WithObserver(o obs.Observer) ScenarioOption {
	return func(s *Scenario) { s.Observer = o }
}

// WithSeed overrides the scenario's seed.
func WithSeed(seed uint64) ScenarioOption {
	return func(s *Scenario) { s.Seed = seed }
}

// WithPredictor selects the SmartHarvest peak predictor for the run (see
// Scenario.Predictor).
func WithPredictor(p PredictorKind) ScenarioOption {
	return func(s *Scenario) { s.Predictor = p }
}

// WithDuration overrides the measured run length.
func WithDuration(d sim.Time) ScenarioOption {
	return func(s *Scenario) { s.Duration = d }
}

// WithChecker attaches an invariant checker to the run. Run binds it and
// places its Report in Result.Check; pass a fresh check.New() per run.
func WithChecker(c *check.Checker) ScenarioOption {
	return func(s *Scenario) { s.Checker = c }
}

// ChurnEvent is one primary-VM arrival or departure.
type ChurnEvent struct {
	// At is the absolute simulated time of the event.
	At sim.Time
	// Depart removes the primary with this index (counting initial
	// Primaries first, then arrivals in event order). -1 means none.
	Depart int
	// Arrive adds a primary VM running this workload. Nil means none.
	Arrive *apps.PrimarySpec
}

// PrimaryResult holds one primary workload's outcome.
type PrimaryResult struct {
	Name      string
	Latency   metrics.Summary
	Phases    []metrics.Summary // per-phase, when the workload defines phases
	Offered   uint64
	Completed uint64
}

// Result is everything a scenario run produces.
type Result struct {
	Scenario  string
	Policy    string
	Mechanism string
	Duration  sim.Time

	Primaries []PrimaryResult

	// AvgHarvestedCores is the time-weighted average number of cores the
	// ElasticVM held beyond its minimum, measured after warmup.
	AvgHarvestedCores float64
	// AvgElasticCores includes the minimum.
	AvgElasticCores float64
	// ElasticCPUSeconds is CPU actually executed by the ElasticVM after
	// warmup.
	ElasticCPUSeconds float64

	// Batch job completion (for HDInsight/TeraSort/Finite).
	BatchFinished bool
	BatchTime     sim.Time
	// BatchProgress is the finite allotment's checkpointed completed
	// work (BatchFinite only; equals BatchWork when finished).
	BatchProgress sim.Time

	// Agent behaviour.
	Windows    uint64
	Safeguards uint64
	QoSTrips   uint64
	Resizes    uint64

	// Fault-injection and resilience counters (all zero on fault-free
	// runs).
	FaultsInjected uint64
	ResizeRetries  uint64
	ResizeFailures uint64
	ResizesAborted uint64
	MissedPolls    uint64
	MissedWindows  uint64
	Stalls         uint64
	Crashes        uint64
	Degradations   uint64
	// Degraded reports the agent ended the run in degraded (NoHarvest)
	// mode.
	Degraded bool

	// Reassignment-mechanism latency (Figure 14).
	Grow, Shrink metrics.Summary
	GrowCDF      []metrics.CDFPoint
	ShrinkCDF    []metrics.CDFPoint

	// Busy-core statistics (Table 1), if CollectBusyStats.
	AvgBusyCores   float64
	AvgWindowPeak  float64
	BusyWindowPeak *metrics.Series // per-25ms-window peaks over time

	// Per-window agent series (Figure 7), if RecordSeries.
	TargetSeries *metrics.Series
	PeakSeries   *metrics.Series
	// QoSViolations is the per-500ms fraction of bad dispatch waits, if
	// RecordSeries.
	QoSViolations *metrics.Series

	// Check is the invariant-verification report when Scenario.Checker was
	// attached; nil otherwise. Check.OK() reports a clean run.
	Check *check.Report
}

// machineHV adapts the simulated machine to the agent's black-box
// hypervisor contract.
type machineHV struct {
	m *hypervisor.Machine
}

func (a machineHV) TotalCores() int       { return a.m.TotalCores() }
func (a machineHV) BusyPrimaryCores() int { return a.m.BusyCores(hypervisor.PrimaryGroup) }
func (a machineHV) SetPrimaryCores(n int) (core.ResizeResult, error) {
	out, err := a.m.SetPrimaryCores(n)
	if err != nil {
		return core.ResizeResult{}, err
	}
	return core.ResizeResult{
		Applied: out.Status == hypervisor.ResizeApplied,
		Latency: out.Latency,
	}, nil
}
func (a machineHV) DrainPrimaryWaits() []int64 { return a.m.DrainPrimaryWaits() }

// faultyHV additionally routes the busy-core signal through the fault
// injector, so polls can be dropped, staled, or perturbed.
type faultyHV struct {
	machineHV
	inj *faults.Injector
}

func (a faultyHV) BusyPrimaryCores() int {
	// A perturbed reading stays within the primary group's current size:
	// the sensor misreads a bitmap of that many slots, it cannot invent
	// cores the group does not hold.
	return a.inj.SamplePoll(a.m.BusyCores(hypervisor.PrimaryGroup), a.m.GroupCores(hypervisor.PrimaryGroup))
}

func (s *Scenario) applyDefaults() {
	if s.PrimaryVMCores == 0 {
		s.PrimaryVMCores = 10
	}
	if s.ElasticMin == 0 {
		s.ElasticMin = 1
	}
	if s.Duration == 0 {
		s.Duration = 20 * sim.Second
	}
	if s.Warmup == 0 {
		s.Warmup = 2 * sim.Second
	}
	if s.Window == 0 {
		s.Window = 25 * sim.Millisecond
	}
	if s.PollInterval == 0 {
		s.PollInterval = 50 * sim.Microsecond
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Controller == nil {
		// The factory is nil for the default CSOAA kind, which routes
		// core.NewSmartHarvest down its legacy construction path and keeps
		// default runs byte-identical to pre-Predictor-API builds. The
		// closure defers factory resolution until after validate has
		// rejected out-of-range kinds.
		pred := s.Predictor
		s.Controller = func(alloc int) core.Controller {
			return core.NewSmartHarvest(alloc, core.SmartHarvestOptions{Predictor: pred.factory()})
		}
		s.LongTermSafeguard = true
	}
}

// validate runs after applyDefaults, so zero values have already been
// filled in; what it rejects is explicitly bad input. Every error wraps
// one of the package's sentinel errors (see errors.go).
func (s *Scenario) validate() error {
	if len(s.Primaries) == 0 {
		return s.scenarioErr("Primaries", ErrNoPrimaries, "")
	}
	if s.PrimaryVMCores < 1 || s.ElasticMin < 1 {
		return s.scenarioErr("PrimaryVMCores/ElasticMin", ErrBadCoreCounts,
			"PrimaryVMCores=%d ElasticMin=%d", s.PrimaryVMCores, s.ElasticMin)
	}
	if s.Duration < 0 {
		return s.scenarioErr("Duration", ErrBadDuration, "Duration=%v", s.Duration)
	}
	if s.Warmup < 0 {
		return s.scenarioErr("Warmup", ErrBadDuration, "Warmup=%v", s.Warmup)
	}
	if s.Window <= 0 || s.PollInterval <= 0 {
		return s.scenarioErr("Window/PollInterval", ErrBadWindow,
			"Window=%v PollInterval=%v", s.Window, s.PollInterval)
	}
	if s.Window < s.PollInterval {
		return s.scenarioErr("Window", ErrBadWindow,
			"Window %v shorter than PollInterval %v", s.Window, s.PollInterval)
	}
	if s.Batch < BatchCPUBully || s.Batch > BatchNone {
		return s.scenarioErr("Batch", ErrUnknownBatch, "BatchKind(%d)", int(s.Batch))
	}
	if !s.Predictor.valid() {
		return s.scenarioErr("Predictor", ErrUnknownPredictor, "PredictorKind(%d)", int(s.Predictor))
	}
	if s.BatchWork < 0 || s.BatchWidth < 0 {
		return s.scenarioErr("BatchWork/BatchWidth", ErrUnknownBatch,
			"BatchWork=%v BatchWidth=%d", s.BatchWork, s.BatchWidth)
	}
	for i, ev := range s.Churn {
		if ev.Depart < -1 {
			return s.scenarioErr("Churn", ErrBadChurn,
				"event %d: departure index %d", i, ev.Depart)
		}
	}
	return nil
}

// maxConcurrentAlloc walks the churn schedule and returns the largest
// concurrent primary allocation the machine must be able to host.
func (s *Scenario) maxConcurrentAlloc() (int, error) {
	count := len(s.Primaries)
	peak := count
	total := count
	events := append([]ChurnEvent(nil), s.Churn...)
	sort.Slice(events, func(i, j int) bool { return events[i].At < events[j].At })
	for _, ev := range events {
		if ev.Arrive != nil {
			count++
			total++
			peak = max(peak, count)
		}
		if ev.Depart >= 0 {
			if ev.Depart >= total {
				return 0, s.scenarioErr("Churn", ErrBadChurn,
					"departure index %d out of range [0, %d)", ev.Depart, total)
			}
			count--
			if count < 1 {
				return 0, s.scenarioErr("Churn", ErrBadChurn, "would leave no primary VMs")
			}
		}
	}
	return peak * s.PrimaryVMCores, nil
}

// Run executes the scenario and returns its results. Options are applied
// to a copy of s, so the caller's Scenario is never mutated. Validation
// failures return a *ScenarioError wrapping one of the package's sentinel
// errors (ErrNoPrimaries, ErrBadDuration, ...), testable with errors.Is.
func Run(s Scenario, opts ...ScenarioOption) (*Result, error) {
	for _, opt := range opts {
		opt(&s)
	}
	// The conflict is only detectable before applyDefaults installs the
	// default controller.
	if s.Controller != nil && s.Predictor != PredictorCSOAA {
		return nil, s.scenarioErr("Predictor", ErrPredictorConflict,
			"Controller set with Predictor=%s; use SmartHarvestPredictorFactory", s.Predictor)
	}
	s.applyDefaults()
	if err := s.validate(); err != nil {
		return nil, err
	}
	rng := simrng.New(s.Seed)

	alloc := len(s.Primaries) * s.PrimaryVMCores
	maxAlloc, err := s.maxConcurrentAlloc()
	if err != nil {
		return nil, err
	}
	total := maxAlloc + s.ElasticMin

	loop := sim.NewLoop()

	// The controller and agent config are resolved before the machine so
	// an attached checker can be bound to the run's final parameters and
	// chained into the observer both layers share.
	ctrl := s.Controller(maxAlloc)
	agentCfg := core.DefaultConfig(maxAlloc, s.ElasticMin)
	agentCfg.Window = s.Window
	agentCfg.PollInterval = s.PollInterval
	// The long-term QoS guard belongs to SmartHarvest-style policies;
	// the paper's baselines (fixed buffer, PrevPeak) run without it.
	agentCfg.LongTermSafeguard = s.LongTermSafeguard && ctrl.Safeguards()
	agentCfg.RecordSeries = s.RecordSeries
	if s.QoSWaitThreshold > 0 {
		agentCfg.QoSWaitThreshold = s.QoSWaitThreshold
	}
	if s.QoSViolationFrac > 0 {
		agentCfg.QoSViolationFrac = s.QoSViolationFrac
	}
	if s.Mechanism == hypervisor.IPI {
		agentCfg.PostResizeSleep = 0
	}
	if s.Resilience != nil {
		agentCfg.Resilience = *s.Resilience
	}
	if agentCfg.Resilience == (core.ResiliencePolicy{}) {
		agentCfg.Resilience = core.DefaultResilience()
	}
	if s.Checker != nil {
		if err := s.Checker.Bind(check.Config{
			TotalCores:        total,
			PrimaryAlloc:      alloc,
			PrimaryVMCores:    s.PrimaryVMCores,
			ElasticMin:        s.ElasticMin,
			HarvestPause:      agentCfg.HarvestPause,
			QoSViolationFrac:  agentCfg.QoSViolationFrac,
			LongTermSafeguard: agentCfg.LongTermSafeguard,
			MaxRetries:        agentCfg.Resilience.MaxRetries,
			RetryBackoff:      agentCfg.Resilience.RetryBackoff,
			Probation:         agentCfg.Resilience.Probation,
		}); err != nil {
			return nil, err
		}
		s.Observer = obs.Multi(s.Observer, s.Checker)
	}
	agentCfg.Observer = s.Observer
	// Announce the predictor identity at the head of the trace — but only
	// for non-default selections, so default CSOAA traces stay
	// byte-identical to pre-Predictor-API builds.
	if s.Predictor != PredictorCSOAA && s.Observer != nil {
		s.Observer.OnPredictorInfo(obs.PredictorInfo{
			Name:    s.Predictor.String(),
			Classes: maxAlloc + 1,
		})
	}

	hvCfg := hypervisor.DefaultConfig(total)
	hvCfg.Mechanism = s.Mechanism
	hvCfg.Seed = rng.Uint64()
	hvCfg.Observer = s.Observer
	// The injector (and its RNG stream) exists only when the plan injects
	// something: a zero plan consumes no draws, keeping fault-free runs
	// byte-identical to scenarios that never heard of fault injection.
	// Fleet-level faults (server crashes, grant drops, stale reads) have
	// no meaning on a single-server scenario — rejecting them here keeps a
	// mistyped plan from silently injecting nothing.
	if s.Faults.FleetEnabled() {
		return nil, fmt.Errorf("harness: scenario %q: fleet-level fault plan %q requires a multi-server fleet (internal/cluster); single-server scenarios accept agent-level keys only", s.Name, s.Faults)
	}
	// Pool plans are likewise fleet-scoped: balances refill from the
	// fleet harvest and admission is bounded by the fleet forecast.
	if s.Pools.Enabled() {
		return nil, fmt.Errorf("harness: scenario %q: pool plan %q requires a multi-server fleet (internal/market rides on internal/sched); single-server scenarios take no -pools", s.Name, s.Pools)
	}
	var injector *faults.Injector
	if s.Faults.AgentEnabled() {
		inj, err := faults.NewInjector(s.Faults, simrng.New(rng.Uint64()), loop.Now, s.Observer)
		if err != nil {
			return nil, err
		}
		injector = inj
		hvCfg.Faults = injector
		agentCfg.Faults = injector
	}
	machine, err := hypervisor.New(loop, hvCfg)
	if err != nil {
		return nil, err
	}
	machine.SetInitialSplit(alloc)

	// Primary VMs and servers.
	var servers []*workload.Server
	for i, spec := range s.Primaries {
		vm := machine.AddVM(fmt.Sprintf("%s-%d", spec.Name, i),
			hypervisor.PrimaryGroup, s.PrimaryVMCores, s.PrimaryVMCores)
		srv, err := spec.Build(loop, vm, rng.Split(), s.Warmup)
		if err != nil {
			return nil, fmt.Errorf("harness: building %s: %w", spec.Name, err)
		}
		srv.Start()
		servers = append(servers, srv)
	}

	// ElasticVM: as many vCPUs as physical cores (paper §3.2).
	evm := machine.AddVM("elastic", hypervisor.ElasticGroup, total, total)
	var batchJob *apps.BatchJob
	var finite *apps.FiniteWork
	var finiteDoneAt sim.Time
	switch s.Batch {
	case BatchCPUBully:
		apps.NewCPUBully(loop, evm).Start()
	case BatchHDInsight:
		batchJob = apps.HDInsight(loop, evm, nil)
	case BatchTeraSort:
		batchJob = apps.TeraSort(loop, evm, nil)
	case BatchFinite:
		work := s.BatchWork
		if work == 0 {
			work = 8 * sim.Second
		}
		finite = apps.NewFiniteWork(loop, evm, work, func() { finiteDoneAt = loop.Now() })
		if s.BatchWidth > 0 {
			finite.LimitParallelism(s.BatchWidth)
		}
		finite.Start()
	case BatchNone:
	default:
		// Unreachable: validate rejects unknown kinds up front.
		return nil, s.scenarioErr("Batch", ErrUnknownBatch, "BatchKind(%d)", int(s.Batch))
	}
	if batchJob != nil {
		if o := s.Observer; o != nil {
			job := batchJob.Name()
			batchJob.SetPhaseHook(func(phase, phases int, finished bool) {
				o.OnBatchProgress(obs.BatchProgress{
					At: loop.Now(), Job: job,
					Phase: phase, Phases: phases, Finished: finished,
				})
			})
		}
		batchJob.Start()
	}

	// Agent. The controller is sized for the maximum concurrent
	// allocation so it can follow churn; the agent starts at the initial
	// allocation. (agentCfg and ctrl were resolved above, before the
	// machine, so the checker could bind to them.)
	var hv core.Hypervisor = machineHV{machine}
	if injector != nil {
		hv = faultyHV{machineHV{machine}, injector}
	}
	agent, err := core.NewAgent(loop, hv, ctrl, agentCfg)
	if err != nil {
		return nil, err
	}
	if alloc != maxAlloc {
		// Start at the initial allocation; the extra capacity is
		// unallocated until arrivals claim it.
		if err := agent.SetPrimaryAlloc(alloc); err != nil {
			return nil, err
		}
	}
	agent.Start()

	// Schedule VM churn.
	var churnErr error
	vms := make([]*hypervisor.VM, len(servers))
	for i, srv := range servers {
		vms[i] = srv.VM()
	}
	for _, ev := range s.Churn {
		ev := ev
		loop.At(ev.At, func() {
			if churnErr != nil {
				return
			}
			if ev.Arrive != nil {
				vm := machine.AddVM(fmt.Sprintf("%s-%d", ev.Arrive.Name, len(vms)),
					hypervisor.PrimaryGroup, s.PrimaryVMCores, s.PrimaryVMCores)
				srv, err := ev.Arrive.Build(loop, vm, rng.Split(), s.Warmup)
				if err != nil {
					churnErr = err
					return
				}
				srv.Start()
				servers = append(servers, srv)
				vms = append(vms, vm)
			}
			if ev.Depart >= 0 {
				if ev.Depart >= len(vms) || vms[ev.Depart] == nil {
					churnErr = fmt.Errorf("harness: churn departure %d invalid", ev.Depart)
					return
				}
				machine.RemoveVM(vms[ev.Depart])
				vms[ev.Depart] = nil
			}
			live := 0
			for _, vm := range vms {
				if vm != nil {
					live++
				}
			}
			if err := agent.SetPrimaryAlloc(live * s.PrimaryVMCores); err != nil {
				churnErr = err
				return
			}
			if o := s.Observer; o != nil {
				arrived := ""
				if ev.Arrive != nil {
					arrived = ev.Arrive.Name
				}
				o.OnChurnApplied(obs.ChurnApplied{
					At:            loop.Now(),
					Arrived:       arrived,
					Departed:      ev.Depart,
					LivePrimaries: live,
					PrimaryAlloc:  live * s.PrimaryVMCores,
				})
			}
		})
	}

	// Optional busy-core statistics sampler (Table 1 methodology: poll
	// every PollInterval, peak per 25 ms window).
	var busySum float64
	var busyN uint64
	var peakSeries *metrics.Series
	if s.CollectBusyStats {
		peakSeries = &metrics.Series{Name: "busy-window-peak"}
		winPeak := 0
		loop.NewTicker(s.Warmup, s.PollInterval, func() {
			b := machine.BusyCores(hypervisor.PrimaryGroup)
			busySum += float64(b)
			busyN++
			if b > winPeak {
				winPeak = b
			}
		})
		loop.NewTicker(s.Warmup+25*sim.Millisecond, 25*sim.Millisecond, func() {
			peakSeries.Add(int64(loop.Now()), float64(winPeak))
			winPeak = 0
		})
	}

	// Snapshot harvest accounting at warmup.
	var elasticCoreSecAtWarmup, elasticCPUAtWarmup float64
	loop.At(s.Warmup, func() {
		elasticCoreSecAtWarmup = machine.CoreSeconds(hypervisor.ElasticGroup)
		elasticCPUAtWarmup = evm.CPUTime().Seconds()
	})

	end := s.Warmup + s.Duration
	loop.RunUntil(end)
	if churnErr != nil {
		return nil, churnErr
	}
	// For completion-time experiments, keep running until the batch job
	// finishes (the primaries keep serving).
	if batchJob != nil && !batchJob.Finished() {
		for !batchJob.Finished() && loop.Now() < end+10*60*sim.Second {
			if !loop.Step() {
				break
			}
		}
	}
	if finite != nil && !finite.Done() {
		for !finite.Done() && loop.Now() < end+10*60*sim.Second {
			if !loop.Step() {
				break
			}
		}
	}

	res := &Result{
		Scenario:  s.Name,
		Policy:    ctrl.Name(),
		Mechanism: s.Mechanism.String(),
		Duration:  s.Duration,
	}
	for _, srv := range servers {
		pr := PrimaryResult{
			Name:      srv.Name(),
			Latency:   srv.Latency().Summarize(),
			Offered:   srv.Offered(),
			Completed: srv.Completed(),
		}
		for i := 0; i < srv.NumPhases(); i++ {
			pr.Phases = append(pr.Phases, srv.PhaseLatency(i).Summarize())
		}
		res.Primaries = append(res.Primaries, pr)
	}

	measured := (loop.Now() - s.Warmup).Seconds()
	if measured > 0 {
		res.AvgElasticCores = (machine.CoreSeconds(hypervisor.ElasticGroup) - elasticCoreSecAtWarmup) / measured
		res.ElasticCPUSeconds = evm.CPUTime().Seconds() - elasticCPUAtWarmup
	}
	res.AvgHarvestedCores = res.AvgElasticCores - float64(s.ElasticMin)
	if res.AvgHarvestedCores < 0 {
		res.AvgHarvestedCores = 0
	}
	if batchJob != nil {
		res.BatchFinished = batchJob.Finished()
		res.BatchTime = batchJob.FinishedAt()
	}
	if finite != nil {
		res.BatchFinished = finite.Done()
		res.BatchTime = finiteDoneAt
		res.BatchProgress = finite.Completed()
	}
	res.Windows = agent.Windows()
	res.Safeguards = agent.SafeguardInvocations()
	res.QoSTrips = agent.QoSTrips()
	res.Resizes = machine.Resizes()
	if injector != nil {
		res.FaultsInjected = injector.Total()
	}
	res.ResizeRetries = agent.ResizeRetries()
	res.ResizeFailures = agent.ResizeFailures()
	res.ResizesAborted = agent.ResizesAborted()
	res.MissedPolls = agent.MissedPolls()
	res.MissedWindows = agent.MissedWindows()
	res.Stalls = agent.Stalls()
	res.Crashes = agent.Crashes()
	res.Degradations = agent.Degradations()
	res.Degraded = agent.Degraded()
	res.Grow = machine.GrowLatency().Summarize()
	res.Shrink = machine.ShrinkLatency().Summarize()
	res.GrowCDF = machine.GrowLatency().CDF()
	res.ShrinkCDF = machine.ShrinkLatency().CDF()
	if s.CollectBusyStats && busyN > 0 {
		res.AvgBusyCores = busySum / float64(busyN)
		res.AvgWindowPeak = peakSeries.Mean()
		res.BusyWindowPeak = peakSeries
	}
	if s.RecordSeries {
		res.TargetSeries = agent.TargetSeries()
		res.PeakSeries = agent.PeakSeries()
		res.QoSViolations = agent.QoSViolationSeries()
	}
	if s.Checker != nil {
		// Fold the hypervisor's end-of-run state self-check into the
		// report: the event stream can look legal while the machine's
		// internal accounting drifted.
		if err := machine.CheckInvariants(); err != nil {
			s.Checker.Flag(check.InvMachineState, loop.Now(), err.Error())
		}
		res.Check = s.Checker.Finish()
	}
	simTimeExecuted.Add(int64(loop.Now()))
	return res, nil
}

// P99 returns the P99 latency (ns) of primary i.
func (r *Result) P99(i int) int64 { return r.Primaries[i].Latency.P99 }

// RunSpeedup runs the scenario twice — once with the given policy and
// once with NoHarvest (ElasticVM pinned to its minimum, which defaults to
// one core) — and returns the batch job's completion-time speedup, as in
// the paper's Figure 6. Callers that want the two runs on the RunAll
// worker pool can instead declare the pair (s, BaselineScenario(s)) and
// combine the results with Speedup.
func RunSpeedup(s Scenario) (speedup float64, with, baseline *Result, err error) {
	if s.Batch != BatchHDInsight && s.Batch != BatchTeraSort {
		return 0, nil, nil, fmt.Errorf("harness: speedup needs a finite batch job")
	}
	with, err = Run(s)
	if err != nil {
		return 0, nil, nil, err
	}
	baseline, err = Run(BaselineScenario(s))
	if err != nil {
		return 0, nil, nil, err
	}
	speedup, err = Speedup(with, baseline)
	if err != nil {
		return 0, with, baseline, err
	}
	return speedup, with, baseline, nil
}

// Controllers — convenience factories for the standard policies.

// SmartHarvestFactory builds the paper's learner with options.
func SmartHarvestFactory(opts core.SmartHarvestOptions) ControllerFactory {
	return func(alloc int) core.Controller { return core.NewSmartHarvest(alloc, opts) }
}

// FixedBufferFactory builds the PerfIso-style baseline with buffer k.
func FixedBufferFactory(k int) ControllerFactory {
	return func(alloc int) core.Controller { return core.NewFixedBuffer(alloc, k) }
}

// PrevPeakFactory builds the heuristic baseline over n windows.
func PrevPeakFactory(n int, returnOne bool) ControllerFactory {
	return func(alloc int) core.Controller { return core.NewPrevPeak(alloc, n, returnOne) }
}

// NoHarvestFactory builds the null policy.
func NoHarvestFactory() ControllerFactory {
	return func(alloc int) core.Controller { return core.NewNoHarvest(alloc) }
}

// EWMAFactory builds the smoothing baseline.
func EWMAFactory(alpha float64, margin int) ControllerFactory {
	return func(alloc int) core.Controller { return core.NewEWMAController(alloc, alpha, margin) }
}
