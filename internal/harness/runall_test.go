package harness

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"smartharvest/internal/apps"
	"smartharvest/internal/sim"
)

// representativeScenarios covers one scenario per experiment family:
// single-primary (fig4/5/10/13-style), multi-primary (fig8/9/11),
// busy-stats collection (table1), series recording (fig7), batch
// completion (fig6), and churn.
func representativeScenarios() []Scenario {
	mcArrival := apps.Memcached(20000)
	short := func(name string, primaries ...apps.PrimarySpec) Scenario {
		return Scenario{
			Name:      name,
			Primaries: primaries,
			Duration:  3 * sim.Second,
			Warmup:    sim.Second,
			Seed:      11,
		}
	}
	single := short("single-primary", apps.Memcached(40000))
	single.LongTermSafeguard = true

	multi := short("multi-primary", apps.Memcached(40000), apps.IndexServe(500))
	multi.Controller = FixedBufferFactory(6)

	busy := short("busy-stats", apps.IndexServe(500))
	busy.Controller = NoHarvestFactory()
	busy.CollectBusyStats = true

	series := short("record-series", apps.SquareWave(8, 1, 500*sim.Millisecond))
	series.RecordSeries = true
	series.Controller = PrevPeakFactory(1, false)

	batch := short("batch", apps.IndexServe(500))
	batch.Batch = BatchTeraSort

	churn := short("churn", apps.Memcached(20000))
	churn.Churn = []ChurnEvent{
		{At: 2 * sim.Second, Depart: -1, Arrive: &mcArrival},
		{At: 3 * sim.Second, Depart: 0},
	}

	return []Scenario{single, multi, busy, series, batch, churn}
}

// renderResult formats a Result the way report generators consume it, so
// the byte-identical claim covers rendered output, not just struct
// equality.
func renderResult(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s policy=%s mech=%s harvested=%.6f elastic=%.6f cpu=%.6f windows=%d safeguards=%d trips=%d resizes=%d\n",
		r.Scenario, r.Policy, r.Mechanism, r.AvgHarvestedCores, r.AvgElasticCores,
		r.ElasticCPUSeconds, r.Windows, r.Safeguards, r.QoSTrips, r.Resizes)
	for _, p := range r.Primaries {
		fmt.Fprintf(&b, "  %s p50=%d p99=%d p999=%d n=%d offered=%d completed=%d\n",
			p.Name, p.Latency.P50, p.Latency.P99, p.Latency.P999,
			p.Latency.Count, p.Offered, p.Completed)
	}
	fmt.Fprintf(&b, "  grow p99=%d shrink p99=%d batch=%v@%d\n",
		r.Grow.P99, r.Shrink.P99, r.BatchFinished, r.BatchTime)
	return b.String()
}

// TestRunAllDeterminism is the regression test behind RunAll's central
// claim: for identical seeds, parallel execution is byte-identical to
// serial execution. Each representative scenario runs twice serially and
// once through RunAll at parallelism 4.
func TestRunAllDeterminism(t *testing.T) {
	scenarios := representativeScenarios()

	serial1 := make([]*Result, len(scenarios))
	serial2 := make([]*Result, len(scenarios))
	for i, s := range scenarios {
		r1, err := Run(s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		r2, err := Run(s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		serial1[i], serial2[i] = r1, r2
	}

	parallel, err := RunAll(scenarios, Parallelism(4))
	if err != nil {
		t.Fatal(err)
	}

	for i, s := range scenarios {
		if !reflect.DeepEqual(serial1[i], serial2[i]) {
			t.Errorf("%s: two serial runs differ — scenario is not a pure function of its seed", s.Name)
		}
		if !reflect.DeepEqual(serial1[i], parallel[i]) {
			t.Errorf("%s: parallel result differs from serial", s.Name)
		}
		if got, want := renderResult(parallel[i]), renderResult(serial1[i]); got != want {
			t.Errorf("%s: rendered output differs:\nserial:\n%s\nparallel:\n%s", s.Name, want, got)
		}
	}
}

// TestRunAllOrderAndErrors checks input-order results and per-scenario
// error capture: a failing scenario yields a nil result and a wrapped
// error naming it, without aborting its siblings.
func TestRunAllOrderAndErrors(t *testing.T) {
	good1 := Scenario{
		Name: "good1", Primaries: []apps.PrimarySpec{apps.IndexServe(200)},
		Duration: 2 * sim.Second, Warmup: sim.Second, Seed: 3,
	}
	bad := Scenario{Name: "bad-no-primaries"} // validate() rejects
	good2 := good1
	good2.Name = "good2"
	good2.Seed = 4

	results, err := RunAll([]Scenario{good1, bad, good2}, Parallelism(4))
	if err == nil {
		t.Fatal("expected an error for the invalid scenario")
	}
	if !strings.Contains(err.Error(), "bad-no-primaries") || !strings.Contains(err.Error(), "scenario 1") {
		t.Fatalf("error does not identify the failing scenario: %v", err)
	}
	if results[1] != nil {
		t.Fatal("failed scenario should have a nil result")
	}
	if results[0] == nil || results[2] == nil {
		t.Fatal("sibling scenarios should still run")
	}
	if results[0].Scenario != "good1" || results[2].Scenario != "good2" {
		t.Fatalf("results out of input order: %q, %q", results[0].Scenario, results[2].Scenario)
	}
}

// TestRunAllEmptyAndSingle covers the pool's degenerate sizes.
func TestRunAllEmptyAndSingle(t *testing.T) {
	if res, err := RunAll(nil); err != nil || len(res) != 0 {
		t.Fatalf("empty RunAll: %v, %v", res, err)
	}
	s := Scenario{
		Name: "solo", Primaries: []apps.PrimarySpec{apps.IndexServe(200)},
		Duration: 2 * sim.Second, Warmup: sim.Second, Seed: 5,
	}
	res, err := RunAll([]Scenario{s}, Parallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res[0], want) {
		t.Fatal("single-scenario RunAll differs from Run")
	}
}

func TestSpeedupHelpers(t *testing.T) {
	s := Scenario{
		Name: "sp", Primaries: []apps.PrimarySpec{apps.IndexServe(200)},
		Batch: BatchTeraSort, Duration: 2 * sim.Second, Warmup: sim.Second, Seed: 6,
	}
	base := BaselineScenario(s)
	if base.Name != "sp-baseline" || base.LongTermSafeguard {
		t.Fatalf("baseline scenario misconfigured: %+v", base)
	}
	results, err := RunAll([]Scenario{s, base}, Parallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	speedup, err := Speedup(results[0], results[1])
	if err != nil {
		t.Fatal(err)
	}
	wantSpeedup, with, baseline, err := RunSpeedup(s)
	if err != nil {
		t.Fatal(err)
	}
	if speedup != wantSpeedup {
		t.Fatalf("Speedup = %v via RunAll, %v via RunSpeedup", speedup, wantSpeedup)
	}
	if !reflect.DeepEqual(results[0], with) || !reflect.DeepEqual(results[1], baseline) {
		t.Fatal("RunAll pair differs from RunSpeedup's runs")
	}
}
