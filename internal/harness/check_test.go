package harness

import (
	"bytes"
	"reflect"
	"testing"

	"smartharvest/internal/apps"
	"smartharvest/internal/check"
	"smartharvest/internal/hypervisor"
	"smartharvest/internal/obs"
	"smartharvest/internal/sim"
)

// checkedScenario is a short standard scenario for verification tests.
func checkedScenario(name string) Scenario {
	return Scenario{
		Name:              name,
		Primaries:         []apps.PrimarySpec{apps.Memcached(40000)},
		Batch:             BatchCPUBully,
		Duration:          1 * sim.Second,
		Warmup:            200 * sim.Millisecond,
		Seed:              1,
		LongTermSafeguard: true,
	}
}

// TestRunWithCheckerClean: the real agent and hypervisor satisfy every
// invariant across representative scenario shapes — the per-commit
// end-to-end verification the checker exists for.
func TestRunWithCheckerClean(t *testing.T) {
	scenarios := []Scenario{
		checkedScenario("check-smartharvest"),
		func() Scenario {
			s := checkedScenario("check-ipis")
			s.Mechanism = hypervisor.IPI
			return s
		}(),
		func() Scenario {
			s := checkedScenario("check-fixedbuffer")
			s.Controller = FixedBufferFactory(4)
			return s
		}(),
		func() Scenario {
			s := checkedScenario("check-batchjob")
			s.Batch = BatchHDInsight
			return s
		}(),
		func() Scenario {
			s := checkedScenario("check-churn")
			s.Primaries = []apps.PrimarySpec{apps.Memcached(40000), apps.IndexServe(500)}
			spec := apps.IndexServe(500)
			s.Churn = []ChurnEvent{
				{At: 400 * sim.Millisecond, Depart: 1},
				{At: 700 * sim.Millisecond, Depart: -1, Arrive: &spec},
			}
			return s
		}(),
	}
	for _, s := range scenarios {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			res, err := Run(s, WithChecker(check.New()))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Check == nil {
				t.Fatal("Result.Check is nil with a checker attached")
			}
			if err := res.Check.Err(); err != nil {
				t.Fatalf("invariant violations:\n%s", res.Check)
			}
			if res.Check.Events == 0 {
				t.Fatal("checker observed no events")
			}
		})
	}
}

// TestRunWithoutCheckerNoReport: no checker, no report — and no cost.
func TestRunWithoutCheckerNoReport(t *testing.T) {
	res, err := Run(checkedScenario("check-absent"))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Check != nil {
		t.Fatal("Result.Check set without a checker attached")
	}
}

// TestCheckerChainsAfterObserver: an attached checker must not displace
// the user's observer — both see the stream.
func TestCheckerChainsAfterObserver(t *testing.T) {
	ring := obs.NewRing(8)
	s := checkedScenario("check-chained")
	s.Observer = ring
	res, err := Run(s, WithChecker(check.New()))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ring.TotalEvents() == 0 {
		t.Fatal("user observer starved by the checker")
	}
	if res.Check == nil || res.Check.Events == 0 {
		t.Fatal("checker starved by the user observer")
	}
}

// TestCheckerReuseRejected: one Checker verifies one run.
func TestCheckerReuseRejected(t *testing.T) {
	c := check.New()
	if _, err := Run(checkedScenario("check-first"), WithChecker(c)); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	if _, err := Run(checkedScenario("check-second"), WithChecker(c)); err == nil {
		t.Fatal("Run accepted an already-bound checker")
	}
}

// TestBaselineScenarioDropsChecker: RunSpeedup's baseline run must not
// inherit the with-run's checker (it can only bind once).
func TestBaselineScenarioDropsChecker(t *testing.T) {
	s := checkedScenario("check-speedup")
	s.Checker = check.New()
	if base := BaselineScenario(s); base.Checker != nil {
		t.Fatal("BaselineScenario kept the original's checker")
	}
}

// TestDifferentialOracleFixedBufferVsNoHarvest: FixedBuffer with the
// buffer equal to the full allocation never harvests — its target is
// pinned to alloc, exactly like NoHarvest. The two policies must
// therefore produce byte-identical full traces (polls included) and
// identical primary-side results for the same scenario and seed: a
// differential oracle over the entire agent/hypervisor/workload stack.
func TestDifferentialOracleFixedBufferVsNoHarvest(t *testing.T) {
	run := func(f ControllerFactory) ([]byte, *Result) {
		var buf bytes.Buffer
		sink := obs.NewJSONL(&buf)
		s := checkedScenario("differential")
		s.LongTermSafeguard = false // neither policy has Safeguards()
		s.Controller = f
		s.Observer = sink
		res, err := Run(s, WithChecker(check.New()))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if err := sink.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		if err := res.Check.Err(); err != nil {
			t.Fatalf("invariant violations:\n%s", res.Check)
		}
		return buf.Bytes(), res
	}

	// Buffer k = alloc (10): target = min(busy+alloc, alloc) = alloc
	// always, so the ElasticVM is pinned to its minimum.
	fbTrace, fbRes := run(FixedBufferFactory(10))
	nhTrace, nhRes := run(NoHarvestFactory())

	if !bytes.Equal(fbTrace, nhTrace) {
		// Find the first diverging line for the failure message.
		fb := bytes.Split(fbTrace, []byte("\n"))
		nh := bytes.Split(nhTrace, []byte("\n"))
		for i := 0; i < min(len(fb), len(nh)); i++ {
			if !bytes.Equal(fb[i], nh[i]) {
				t.Fatalf("traces diverge at line %d:\nfixedbuffer: %s\nnoharvest:   %s",
					i+1, fb[i], nh[i])
			}
		}
		t.Fatalf("traces differ in length: %d vs %d lines", len(fb), len(nh))
	}
	if !reflect.DeepEqual(fbRes.Primaries, nhRes.Primaries) {
		t.Fatalf("primary-side results diverge:\nfixedbuffer: %+v\nnoharvest:   %+v",
			fbRes.Primaries, nhRes.Primaries)
	}
	if fbRes.Resizes != 0 || nhRes.Resizes != 0 {
		t.Fatalf("pinned policies resized: fixedbuffer=%d noharvest=%d",
			fbRes.Resizes, nhRes.Resizes)
	}
	if fbRes.AvgHarvestedCores != 0 || nhRes.AvgHarvestedCores != 0 {
		t.Fatalf("pinned policies harvested: fixedbuffer=%.3f noharvest=%.3f",
			fbRes.AvgHarvestedCores, nhRes.AvgHarvestedCores)
	}
}
