package harness

import (
	"errors"
	"fmt"
)

// Sentinel validation errors. Every error returned by Run for a malformed
// Scenario wraps exactly one of these (inside a *ScenarioError), so
// callers can dispatch with errors.Is without parsing messages.
var (
	// ErrNoPrimaries: the scenario declares no primary workloads.
	ErrNoPrimaries = errors.New("no primary workloads")
	// ErrBadCoreCounts: PrimaryVMCores or ElasticMin is out of range.
	ErrBadCoreCounts = errors.New("bad core counts")
	// ErrBadDuration: Duration or Warmup is negative.
	ErrBadDuration = errors.New("bad duration")
	// ErrBadWindow: the learning window or poll interval is invalid
	// (either non-positive, or Window < PollInterval).
	ErrBadWindow = errors.New("bad window")
	// ErrBadChurn: a churn event is malformed (departure index out of
	// range, or the schedule would leave no primary VMs).
	ErrBadChurn = errors.New("bad churn schedule")
	// ErrUnknownBatch: Batch is not one of the declared BatchKind values.
	ErrUnknownBatch = errors.New("unknown batch kind")
	// ErrUnknownPredictor: Predictor is not one of the declared
	// PredictorKind values (or, from ParsePredictor, the name is not a
	// registered predictor).
	ErrUnknownPredictor = errors.New("unknown predictor")
	// ErrPredictorConflict: the scenario sets both an explicit Controller
	// and a non-default Predictor; the predictor would be silently
	// ignored, so the combination is rejected instead.
	ErrPredictorConflict = errors.New("predictor conflicts with explicit controller")
)

// ScenarioError reports which scenario and field failed validation. It
// wraps one of the sentinel errors above; use errors.Is to test the kind
// and errors.As to recover the detail.
type ScenarioError struct {
	// Scenario is the offending scenario's name.
	Scenario string
	// Field names the Scenario field that failed.
	Field string
	// Detail elaborates (may be empty).
	Detail string
	// Err is the sentinel the failure wraps.
	Err error
}

func (e *ScenarioError) Error() string {
	msg := fmt.Sprintf("harness: scenario %q: %s: %v", e.Scenario, e.Field, e.Err)
	if e.Detail != "" {
		msg += " (" + e.Detail + ")"
	}
	return msg
}

func (e *ScenarioError) Unwrap() error { return e.Err }

// scenarioErr builds a *ScenarioError for s.
func (s *Scenario) scenarioErr(field string, sentinel error, detailf string, args ...any) error {
	return &ScenarioError{
		Scenario: s.Name,
		Field:    field,
		Detail:   fmt.Sprintf(detailf, args...),
		Err:      sentinel,
	}
}
