package harness

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"smartharvest/internal/apps"
	"smartharvest/internal/obs"
	"smartharvest/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// traceScenario is the fixed scenario behind the golden trace: short, a
// coarse poll so the trace stays small, with churn for event coverage.
func traceScenario() Scenario {
	arrival := apps.Memcached(20000)
	return Scenario{
		Name:         "golden-trace",
		Primaries:    []apps.PrimarySpec{apps.Memcached(40000)},
		Duration:     200 * sim.Millisecond,
		Warmup:       100 * sim.Millisecond,
		PollInterval: 5 * sim.Millisecond,
		Seed:         11,
		Churn: []ChurnEvent{
			{At: 150 * sim.Millisecond, Depart: -1, Arrive: &arrival},
			{At: 250 * sim.Millisecond, Depart: 1},
		},
	}
}

// runTrace executes s with a JSONL sink and returns the trace bytes.
func runTrace(t *testing.T, s Scenario, opts ...obs.JSONLOption) []byte {
	t.Helper()
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf, opts...)
	if _, err := Run(s, WithObserver(sink)); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceGolden locks the end-to-end trace of a fixed scenario: event
// order, timestamps, and every field. It fails on any schema or behaviour
// drift; run with -update to regenerate after an intentional change (and
// bump obs.SchemaVersion if line formats changed).
func TestTraceGolden(t *testing.T) {
	got := runTrace(t, traceScenario())
	golden := filepath.Join("testdata", "golden-trace.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace drifted from %s (re-run with -update if intentional):\ngot %d bytes, want %d",
			golden, len(got), len(want))
		// Show the first diverging line for debugging.
		gl, wl := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if !bytes.Equal(gl[i], wl[i]) {
				t.Errorf("first diff at line %d:\ngot:  %s\nwant: %s", i+1, gl[i], wl[i])
				break
			}
		}
	}
}

// TestTraceByteIdenticalAcrossParallelism is the trace-level counterpart
// of TestRunAllDeterminism: per-scenario JSONL traces collected through a
// parallel RunAll are byte-identical to serial Run traces.
func TestTraceByteIdenticalAcrossParallelism(t *testing.T) {
	scenarios := representativeScenarios()

	serial := make([][]byte, len(scenarios))
	for i, s := range scenarios {
		serial[i] = runTrace(t, s, obs.JSONLOmitPolls())
	}

	bufs := make([]bytes.Buffer, len(scenarios))
	withObs := make([]Scenario, len(scenarios))
	for i, s := range scenarios {
		s.Observer = obs.NewJSONL(&bufs[i], obs.JSONLOmitPolls())
		withObs[i] = s
	}
	if _, err := RunAll(withObs, Parallelism(4)); err != nil {
		t.Fatal(err)
	}
	for i, s := range scenarios {
		sink := withObs[i].Observer.(*obs.JSONL)
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(serial[i], bufs[i].Bytes()) {
			t.Errorf("%s: parallel trace differs from serial (%d vs %d bytes)",
				s.Name, len(bufs[i].Bytes()), len(serial[i]))
		}
		if len(serial[i]) == 0 {
			t.Errorf("%s: empty trace", s.Name)
		}
	}
}

// TestMetricsSinkMatchesResult checks that the aggregating sink derives
// the same counters the Result reports from its own event stream.
func TestMetricsSinkMatchesResult(t *testing.T) {
	for _, s := range representativeScenarios() {
		m := obs.NewMetrics()
		res, err := Run(s, WithObserver(m))
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if m.Windows != res.Windows {
			t.Errorf("%s: metrics windows %d, result %d", s.Name, m.Windows, res.Windows)
		}
		if m.Safeguards != res.Safeguards {
			t.Errorf("%s: metrics safeguards %d, result %d", s.Name, m.Safeguards, res.Safeguards)
		}
		if m.QoSTrips != res.QoSTrips {
			t.Errorf("%s: metrics qos trips %d, result %d", s.Name, m.QoSTrips, res.QoSTrips)
		}
		if m.Resizes != res.Resizes {
			t.Errorf("%s: metrics resizes %d, result %d", s.Name, m.Resizes, res.Resizes)
		}
		if s.Batch == BatchTeraSort && (!m.BatchFinished || m.BatchPhases == 0) {
			t.Errorf("%s: batch progress not observed: phases=%d finished=%v",
				s.Name, m.BatchPhases, m.BatchFinished)
		}
		if len(s.Churn) > 0 && int(m.Churns) != len(s.Churn) {
			t.Errorf("%s: churn events %d, want %d", s.Name, m.Churns, len(s.Churn))
		}
	}
}

// TestScenarioOptionsDoNotMutateCaller checks the functional options are
// applied to Run's copy only.
func TestScenarioOptionsDoNotMutateCaller(t *testing.T) {
	s := Scenario{
		Name: "opts", Primaries: []apps.PrimarySpec{apps.IndexServe(200)},
		Duration: sim.Second, Warmup: 500 * sim.Millisecond, Seed: 1,
	}
	ring := obs.NewRing(1 << 12)
	res, err := Run(s, WithObserver(ring), WithSeed(7), WithDuration(2*sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	if s.Observer != nil || s.Seed != 1 || s.Duration != sim.Second {
		t.Fatalf("caller's scenario mutated: %+v", s)
	}
	if res.Duration != 2*sim.Second {
		t.Fatalf("WithDuration not applied: %v", res.Duration)
	}
	if ring.TotalEvents() == 0 {
		t.Fatal("WithObserver not applied: no events recorded")
	}
}

// TestScenarioValidationErrors is the table behind the structured-error
// contract: each malformed scenario yields a *ScenarioError wrapping the
// right sentinel.
func TestScenarioValidationErrors(t *testing.T) {
	one := []apps.PrimarySpec{apps.IndexServe(200)}
	cases := []struct {
		name string
		mut  func(*Scenario)
		want error
	}{
		{"no-primaries", func(s *Scenario) { s.Primaries = nil }, ErrNoPrimaries},
		{"negative-vm-cores", func(s *Scenario) { s.PrimaryVMCores = -4 }, ErrBadCoreCounts},
		{"negative-elastic-min", func(s *Scenario) { s.ElasticMin = -1 }, ErrBadCoreCounts},
		{"negative-duration", func(s *Scenario) { s.Duration = -sim.Second }, ErrBadDuration},
		{"negative-warmup", func(s *Scenario) { s.Warmup = -sim.Second }, ErrBadDuration},
		{"negative-window", func(s *Scenario) { s.Window = -sim.Millisecond }, ErrBadWindow},
		{"window-below-poll", func(s *Scenario) {
			s.Window = 10 * sim.Microsecond
			s.PollInterval = 50 * sim.Microsecond
		}, ErrBadWindow},
		{"unknown-batch", func(s *Scenario) { s.Batch = BatchKind(99) }, ErrUnknownBatch},
		{"churn-depart-below-minus-one", func(s *Scenario) {
			s.Churn = []ChurnEvent{{At: sim.Second, Depart: -2}}
		}, ErrBadChurn},
		{"churn-depart-out-of-range", func(s *Scenario) {
			s.Churn = []ChurnEvent{{At: sim.Second, Depart: 5}}
		}, ErrBadChurn},
		{"churn-leaves-no-primaries", func(s *Scenario) {
			s.Churn = []ChurnEvent{{At: sim.Second, Depart: 0}}
		}, ErrBadChurn},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := Scenario{Name: c.name, Primaries: one, Duration: sim.Second, Seed: 1}
			c.mut(&s)
			_, err := Run(s)
			if err == nil {
				t.Fatal("Run accepted the malformed scenario")
			}
			if !errors.Is(err, c.want) {
				t.Fatalf("error %v does not wrap %v", err, c.want)
			}
			var se *ScenarioError
			if !errors.As(err, &se) {
				t.Fatalf("error %T is not a *ScenarioError", err)
			}
			if se.Scenario != c.name {
				t.Fatalf("ScenarioError names %q, want %q", se.Scenario, c.name)
			}
		})
	}

	// A well-formed scenario must not be rejected.
	if _, err := Run(Scenario{
		Name: "ok", Primaries: one,
		Duration: 500 * sim.Millisecond, Warmup: 100 * sim.Millisecond, Seed: 1,
	}); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
}

// TestBatchKindRoundTrip covers the textual enum contract.
func TestBatchKindRoundTrip(t *testing.T) {
	for _, k := range []BatchKind{BatchCPUBully, BatchHDInsight, BatchTeraSort, BatchNone} {
		got, err := ParseBatchKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseBatchKind(%q) = %v, %v", k.String(), got, err)
		}
		text, err := k.MarshalText()
		if err != nil || string(text) != k.String() {
			t.Errorf("MarshalText(%v) = %q, %v", k, text, err)
		}
		var back BatchKind
		if err := back.UnmarshalText(text); err != nil || back != k {
			t.Errorf("UnmarshalText(%q) = %v, %v", text, back, err)
		}
	}
	if _, err := ParseBatchKind("nope"); err == nil {
		t.Error("ParseBatchKind accepted junk")
	}
	if _, err := BatchKind(99).MarshalText(); err == nil {
		t.Error("MarshalText accepted an invalid kind")
	}
}
