package harness

import (
	"testing"

	"smartharvest/internal/apps"
	"smartharvest/internal/sim"
)

func TestChurnDeparture(t *testing.T) {
	// One of two Memcacheds departs mid-run: its ten cores become
	// unallocated and the harvest should jump accordingly.
	mc := apps.Memcached(40000)
	s := Scenario{
		Name:      "churn-depart",
		Primaries: []apps.PrimarySpec{mc, mc},
		Duration:  8 * sim.Second,
		Warmup:    2 * sim.Second,
		Seed:      5,
		Churn: []ChurnEvent{
			{At: 6 * sim.Second, Depart: 1},
		},
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	// After departure the ~10 freed cores flow to the ElasticVM: the
	// average over [2s, 10s] must reflect the 4 seconds at ~10+ extra
	// cores (>= ~5 on average).
	if res.AvgHarvestedCores < 4 {
		t.Fatalf("harvested %v; departed tenant's cores not reclaimed", res.AvgHarvestedCores)
	}
	// The departed VM's server stops completing work but its recorded
	// latencies survive.
	if res.Primaries[1].Latency.Count == 0 {
		t.Fatal("departed primary lost its latency record")
	}
}

func TestChurnArrival(t *testing.T) {
	// A second Memcached arrives mid-run: before it arrives its cores
	// are unallocated (harvested); afterwards the agent must honor the
	// larger allocation.
	mc := apps.Memcached(40000)
	arrival := apps.Memcached(40000)
	s := Scenario{
		Name:      "churn-arrive",
		Primaries: []apps.PrimarySpec{mc},
		Duration:  8 * sim.Second,
		Warmup:    2 * sim.Second,
		Seed:      5,
		Churn: []ChurnEvent{
			{At: 6 * sim.Second, Depart: -1, Arrive: &arrival},
		},
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Primaries) != 2 {
		t.Fatalf("expected 2 primaries in results, got %d", len(res.Primaries))
	}
	// The arrival's server must have run: it serves the last 4 seconds.
	if res.Primaries[1].Completed < 100000 {
		t.Fatalf("arrival completed only %d requests", res.Primaries[1].Completed)
	}
	// Before the arrival, 10 of 21 cores were unallocated -> harvested.
	if res.AvgHarvestedCores < 3 {
		t.Fatalf("harvested %v; unallocated cores not used before arrival", res.AvgHarvestedCores)
	}
}

func TestChurnArrivalTailProtected(t *testing.T) {
	// The newly arrived tenant's own tail latency must be protected once
	// it lands, even though its cores were harvested moments before.
	mc := apps.Memcached(40000)
	arrival := apps.Memcached(40000)
	s := Scenario{
		Name:      "churn-protect",
		Primaries: []apps.PrimarySpec{mc},
		Duration:  10 * sim.Second,
		Warmup:    2 * sim.Second,
		Seed:      9,
		Churn: []ChurnEvent{
			{At: 4 * sim.Second, Depart: -1, Arrive: &arrival},
		},
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the arrival's P99 with the resident's: same workload, so
	// they should be in the same ballpark once the agent adapts.
	resident := float64(res.Primaries[0].Latency.P99)
	arrived := float64(res.Primaries[1].Latency.P99)
	if arrived > resident*3 {
		t.Fatalf("arrival P99 %v vs resident %v; agent did not adapt to the new tenant",
			sim.Time(int64(arrived)), sim.Time(int64(resident)))
	}
}

func TestChurnValidation(t *testing.T) {
	mc := apps.Memcached(1000)
	bad := []Scenario{
		{
			Name: "depart-everything", Primaries: []apps.PrimarySpec{mc},
			Churn: []ChurnEvent{{At: sim.Second, Depart: 0}},
		},
		{
			Name: "depart-oob", Primaries: []apps.PrimarySpec{mc, mc},
			Churn: []ChurnEvent{{At: sim.Second, Depart: 7}},
		},
	}
	for _, s := range bad {
		s.Duration = 3 * sim.Second
		s.Warmup = sim.Second
		if _, err := Run(s); err == nil {
			t.Errorf("scenario %q accepted", s.Name)
		}
	}
}
