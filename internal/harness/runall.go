package harness

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"smartharvest/internal/sim"
)

// RunOption configures RunAll.
type RunOption func(*runAllConfig)

type runAllConfig struct {
	parallelism int
}

// Parallelism bounds the number of scenarios RunAll executes
// concurrently. n < 1 selects the default, runtime.GOMAXPROCS(0).
func Parallelism(n int) RunOption {
	return func(c *runAllConfig) { c.parallelism = n }
}

// RunAll executes independent scenarios across a bounded worker pool and
// returns their results in input order, so output is byte-identical to
// calling Run serially on each scenario.
//
// Safety argument: Run is a pure function of its Scenario. Each call
// builds its own sim.Loop, simrng stream (from Scenario.Seed), machine,
// and metrics; no package in the simulation path holds mutable global
// state. ControllerFactory values are shared across scenarios but only
// construct fresh controllers. go test -race over this package keeps the
// claim honest.
//
// Errors are captured per scenario: a failed scenario leaves a nil entry
// in the result slice and contributes one wrapped error (carrying its
// index and name) to the joined error; other scenarios still run to
// completion.
func RunAll(scenarios []Scenario, opts ...RunOption) ([]*Result, error) {
	var cfg runAllConfig
	for _, o := range opts {
		o(&cfg)
	}
	workers := cfg.parallelism
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = min(workers, len(scenarios))

	results := make([]*Result, len(scenarios))
	errs := make([]error, len(scenarios))
	runOne := func(i int) {
		res, err := Run(scenarios[i])
		if err != nil {
			errs[i] = fmt.Errorf("scenario %d (%s): %w", i, scenarios[i].Name, err)
			return
		}
		results[i] = res
	}

	if workers <= 1 {
		for i := range scenarios {
			runOne(i)
		}
		return results, errors.Join(errs...)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(scenarios) {
					return
				}
				runOne(i)
			}
		}()
	}
	wg.Wait()
	return results, errors.Join(errs...)
}

// simTimeExecuted accumulates the simulated time advanced by every Run
// in this process, across goroutines. cmd/experiments and bench_test use
// deltas of this counter to report sim-seconds per wall-second.
var simTimeExecuted atomic.Int64

// SimTimeExecuted returns the cumulative simulated time executed by all
// Run calls so far (monotonic; read deltas around a region of interest).
func SimTimeExecuted() sim.Time { return sim.Time(simTimeExecuted.Load()) }

// BaselineScenario returns s reconfigured as the no-harvest baseline
// RunSpeedup compares against: same workloads and seed, ElasticVM pinned
// to its minimum.
func BaselineScenario(s Scenario) Scenario {
	base := s
	base.Name = s.Name + "-baseline"
	base.Controller = NoHarvestFactory()
	base.LongTermSafeguard = false
	// A Checker verifies exactly one run; the baseline needs its own.
	base.Checker = nil
	return base
}

// Speedup computes the batch completion-time speedup of a policy run
// over its no-harvest baseline (the paper's Figure 6 metric).
func Speedup(with, baseline *Result) (float64, error) {
	if !with.BatchFinished || !baseline.BatchFinished {
		return 0, fmt.Errorf("harness: batch job did not finish (with=%v baseline=%v)",
			with.BatchFinished, baseline.BatchFinished)
	}
	return float64(baseline.BatchTime) / float64(with.BatchTime), nil
}
