package harness

import (
	"errors"
	"testing"

	"smartharvest/internal/apps"
	"smartharvest/internal/learner"
	"smartharvest/internal/obs"
	"smartharvest/internal/sim"
)

func allPredictorKinds() []PredictorKind {
	return []PredictorKind{
		PredictorCSOAA, PredictorAdaGrad, PredictorEWMA,
		PredictorPeriodic, PredictorMLP, PredictorEnsemble,
	}
}

func TestPredictorKindRoundTrip(t *testing.T) {
	for _, kind := range allPredictorKinds() {
		name := kind.String()
		got, err := ParsePredictor(name)
		if err != nil {
			t.Errorf("ParsePredictor(%q): %v", name, err)
			continue
		}
		if got != kind {
			t.Errorf("ParsePredictor(%q) = %v, want %v", name, got, kind)
		}
		text, err := kind.MarshalText()
		if err != nil {
			t.Errorf("%v.MarshalText: %v", kind, err)
			continue
		}
		var back PredictorKind
		if err := back.UnmarshalText(text); err != nil {
			t.Errorf("UnmarshalText(%q): %v", text, err)
			continue
		}
		if back != kind {
			t.Errorf("UnmarshalText(%q) = %v, want %v", text, back, kind)
		}
	}
	// Every kind names a registered predictor and vice versa: the kind
	// enum and the learner registry must not drift apart.
	if want, got := len(learner.Names()), len(allPredictorKinds()); want != got {
		t.Errorf("registry has %d predictors, PredictorKind declares %d", want, got)
	}
	for _, name := range learner.Names() {
		if _, err := ParsePredictor(name); err != nil {
			t.Errorf("registered predictor %q has no PredictorKind", name)
		}
	}
}

func TestParsePredictorUnknown(t *testing.T) {
	_, err := ParsePredictor("nope")
	if !errors.Is(err, ErrUnknownPredictor) {
		t.Fatalf("ParsePredictor(nope) = %v, want ErrUnknownPredictor", err)
	}
	var bad PredictorKind
	if err := bad.UnmarshalText([]byte("nope")); !errors.Is(err, ErrUnknownPredictor) {
		t.Fatalf("UnmarshalText(nope) = %v, want ErrUnknownPredictor", err)
	}
	if _, err := PredictorKind(99).MarshalText(); err == nil {
		t.Fatal("MarshalText accepted an undeclared kind")
	}
}

func TestScenarioRejectsUnknownPredictor(t *testing.T) {
	s := short("bad-pred", apps.Memcached(40000))
	s.Predictor = PredictorKind(99)
	_, err := Run(s)
	if !errors.Is(err, ErrUnknownPredictor) {
		t.Fatalf("Run = %v, want ErrUnknownPredictor", err)
	}
	var se *ScenarioError
	if !errors.As(err, &se) || se.Field != "Predictor" {
		t.Fatalf("want *ScenarioError on field Predictor, got %v", err)
	}
}

func TestScenarioRejectsPredictorConflict(t *testing.T) {
	// An explicit Controller would silently ignore Predictor, so the
	// combination must be rejected, not guessed at.
	s := short("pred-conflict", apps.Memcached(40000))
	s.Controller = NoHarvestFactory()
	s.Predictor = PredictorEWMA
	_, err := Run(s)
	if !errors.Is(err, ErrPredictorConflict) {
		t.Fatalf("Run = %v, want ErrPredictorConflict", err)
	}
	var se *ScenarioError
	if !errors.As(err, &se) || se.Field != "Predictor" {
		t.Fatalf("want *ScenarioError on field Predictor, got %v", err)
	}
	// The default kind with an explicit controller is fine.
	s.Predictor = PredictorCSOAA
	if _, err := Run(s); err != nil {
		t.Fatalf("Controller with default Predictor: %v", err)
	}
}

// predInfoCapture records PredictorInfo events.
type predInfoCapture struct {
	obs.NopObserver
	infos []obs.PredictorInfo
}

func (c *predInfoCapture) OnPredictorInfo(e obs.PredictorInfo) { c.infos = append(c.infos, e) }

func TestPredictorInfoEmission(t *testing.T) {
	mk := func(kind PredictorKind) (*predInfoCapture, *Result) {
		s := short("pred-info", apps.Memcached(40000))
		s.Duration = 500 * sim.Millisecond
		s.Warmup = 100 * sim.Millisecond
		s.Predictor = kind
		cap := &predInfoCapture{}
		s.Observer = cap
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		return cap, res
	}

	// Default CSOAA runs emit nothing: their traces must stay
	// byte-identical to builds that predate the predictor API.
	cap, _ := mk(PredictorCSOAA)
	if len(cap.infos) != 0 {
		t.Fatalf("default run emitted %d PredictorInfo events", len(cap.infos))
	}

	cap, res := mk(PredictorEWMA)
	if len(cap.infos) != 1 {
		t.Fatalf("ewma run emitted %d PredictorInfo events, want 1", len(cap.infos))
	}
	info := cap.infos[0]
	if info.Name != "ewma" {
		t.Errorf("PredictorInfo.Name = %q", info.Name)
	}
	if info.Classes < 2 {
		t.Errorf("PredictorInfo.Classes = %d", info.Classes)
	}
	if res.Policy != "smartharvest" {
		t.Errorf("policy %q, want smartharvest", res.Policy)
	}
}

func TestWithPredictorOption(t *testing.T) {
	var s Scenario
	WithPredictor(PredictorPeriodic)(&s)
	if s.Predictor != PredictorPeriodic {
		t.Fatalf("WithPredictor set %v", s.Predictor)
	}
}

// TestZooPredictorsRunEndToEnd drives each non-default predictor through
// a real (short) scenario via the public Scenario.Predictor path.
func TestZooPredictorsRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, kind := range allPredictorKinds()[1:] {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			s := short("zoo-"+kind.String(), apps.Memcached(40000))
			s.Duration = 2 * sim.Second
			s.Warmup = 500 * sim.Millisecond
			s.Predictor = kind
			res, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if res.Windows == 0 {
				t.Fatal("no learning windows ran")
			}
		})
	}
}
