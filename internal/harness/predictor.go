package harness

import (
	"fmt"

	"smartharvest/internal/core"
	"smartharvest/internal/learner"
)

// PredictorKind selects the SmartHarvest peak predictor, mirroring how
// Mechanism and BatchKind select the reassignment mechanism and batch
// workload. The zero value is the paper's CSOAA learner, so existing
// scenarios are untouched.
type PredictorKind int

const (
	// PredictorCSOAA is the paper's default: constant-rate cost-sensitive
	// one-against-all over the five window features.
	PredictorCSOAA PredictorKind = iota
	// PredictorAdaGrad is CSOAA with per-weight adaptive step sizes.
	PredictorAdaGrad
	// PredictorEWMA is the smoothed-recent-peak baseline.
	PredictorEWMA
	// PredictorPeriodic detects per-VM periodic load patterns and
	// predicts from a phase-bucketed peak profile.
	PredictorPeriodic
	// PredictorMLP is a small online-gradient neural predictor (one tanh
	// hidden layer over the window features).
	PredictorMLP
	// PredictorEnsemble picks the best of {EWMA, CSOAA, Periodic, MLP}
	// by decayed realized cost, falling back to EWMA when every member's
	// regret explodes.
	PredictorEnsemble
)

// predictorNames maps each kind to its learner-registry name.
var predictorNames = map[PredictorKind]string{
	PredictorCSOAA:    "csoaa",
	PredictorAdaGrad:  "adagrad",
	PredictorEWMA:     "ewma",
	PredictorPeriodic: "periodic",
	PredictorMLP:      "mlp",
	PredictorEnsemble: "ensemble",
}

func (p PredictorKind) String() string {
	if name, ok := predictorNames[p]; ok {
		return name
	}
	return fmt.Sprintf("PredictorKind(%d)", int(p))
}

// valid reports whether p is a declared kind.
func (p PredictorKind) valid() bool {
	_, ok := predictorNames[p]
	return ok
}

// ParsePredictor is the inverse of String. Unknown names return an error
// wrapping ErrUnknownPredictor, testable with errors.Is.
func ParsePredictor(s string) (PredictorKind, error) {
	for kind, name := range predictorNames {
		if name == s {
			return kind, nil
		}
	}
	return 0, fmt.Errorf("harness: %w %q (want one of %v)", ErrUnknownPredictor, s, learner.Names())
}

// MarshalText implements encoding.TextMarshaler.
func (p PredictorKind) MarshalText() ([]byte, error) {
	if !p.valid() {
		return nil, fmt.Errorf("harness: cannot marshal %s", p)
	}
	return []byte(p.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (p *PredictorKind) UnmarshalText(text []byte) error {
	v, err := ParsePredictor(string(text))
	if err != nil {
		return err
	}
	*p = v
	return nil
}

// factory returns the learner.Factory for p, or nil for the default
// CSOAA kind — a nil factory makes core.NewSmartHarvest take its legacy
// construction path, which keeps default runs byte-identical to builds
// that predate the Predictor interface.
func (p PredictorKind) factory() learner.Factory {
	if p == PredictorCSOAA {
		return nil
	}
	name := predictorNames[p]
	return func(classes int) learner.Predictor {
		pred, err := learner.NewPredictor(name, classes)
		if err != nil {
			// Every declared kind is registered; reaching this is a
			// registry wiring bug.
			panic(err)
		}
		return pred
	}
}

// SmartHarvestPredictorFactory builds a SmartHarvest controller factory
// running the selected predictor. It is the explicit-Controller
// counterpart to Scenario.Predictor for callers (like cmd/smartharvest)
// that compose the controller themselves.
func SmartHarvestPredictorFactory(kind PredictorKind, opts core.SmartHarvestOptions) ControllerFactory {
	opts.Predictor = kind.factory()
	return func(alloc int) core.Controller {
		return core.NewSmartHarvest(alloc, opts)
	}
}
