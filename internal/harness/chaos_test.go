package harness

import (
	"bytes"
	"testing"

	"smartharvest/internal/apps"
	"smartharvest/internal/check"
	"smartharvest/internal/faults"
	"smartharvest/internal/obs"
	"smartharvest/internal/sim"
)

// chaosPlan is a moderate all-surfaces fault mix for the tests below.
func chaosPlan() faults.Plan {
	return faults.Plan{
		HypercallFailProb:  0.2,
		HypercallDelayProb: 0.1,
		PollDropProb:       0.002,
		PollStaleProb:      0.002,
		PollNoiseProb:      0.01,
		StallProb:          0.01,
		CrashProb:          0.005,
	}
}

func chaosTrace(t *testing.T, s Scenario) ([]byte, *Result) {
	t.Helper()
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf, obs.JSONLOmitPolls())
	s.Observer = sink
	res, err := Run(s, WithChecker(check.New()))
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

// TestZeroProbabilityPlanByteIdentical is the "faults off means OFF"
// regression: a plan with durations set but every probability zero must
// not construct an injector, draw from the scenario RNG, or perturb the
// run in any way — its trace is byte-identical to a run with no plan.
func TestZeroProbabilityPlanByteIdentical(t *testing.T) {
	base := short("nofaults", apps.Memcached(40000))
	base.Duration = 3 * sim.Second
	plain, plainRes := chaosTrace(t, base)

	zeroed := base
	zeroed.Faults = faults.Plan{
		HypercallDelayMean: 2 * sim.Millisecond,
		HypercallDelayP99:  10 * sim.Millisecond,
		StallDur:           60 * sim.Millisecond,
		RestartDur:         250 * sim.Millisecond,
		LoseModel:          true,
	}
	if zeroed.Faults.Enabled() {
		t.Fatal("duration-only plan reports enabled")
	}
	withPlan, planRes := chaosTrace(t, zeroed)

	if !bytes.Equal(plain, withPlan) {
		t.Fatalf("zero-probability plan changed the trace (%d vs %d bytes)",
			len(plain), len(withPlan))
	}
	if len(plain) == 0 {
		t.Fatal("empty trace")
	}
	if plainRes.P99(0) != planRes.P99(0) || plainRes.Resizes != planRes.Resizes {
		t.Fatal("zero-probability plan changed results")
	}
	if planRes.FaultsInjected != 0 {
		t.Fatalf("zero-probability plan injected %d faults", planRes.FaultsInjected)
	}
}

// TestFleetPlanRejectedOnSingleServer: fleet-level fault keys (server
// crashes, grant drops, stale reads) have no injection surface in a
// single-server harness scenario; accepting them would silently inject
// nothing, so Run must refuse the scenario outright.
func TestFleetPlanRejectedOnSingleServer(t *testing.T) {
	plans := []faults.Plan{
		{ServerCrashProb: 0.01},
		{GrantDropProb: 0.2},
		{ReadStaleProb: 0.1, ReconcileLossProb: 0.05},
		{HypercallFailProb: 0.1, GrantDelayProb: 0.1}, // mixed: still rejected
	}
	for _, plan := range plans {
		s := short("fleet-plan", apps.Memcached(40000))
		s.Duration = sim.Second
		s.Faults = plan
		if _, err := Run(s); err == nil {
			t.Errorf("single-server scenario accepted fleet plan %q", plan)
		}
	}
}

// TestChaosDeterministicFromSeed: the whole fault schedule hangs off the
// scenario seed, so a chaotic run repeated with the same seed must
// reproduce the trace byte for byte and every fault counter exactly.
func TestChaosDeterministicFromSeed(t *testing.T) {
	run := func() ([]byte, *Result) {
		s := short("chaos-det", apps.Memcached(40000))
		s.Duration = 3 * sim.Second
		s.Faults = chaosPlan()
		return chaosTrace(t, s)
	}
	trace1, res1 := run()
	trace2, res2 := run()
	if !bytes.Equal(trace1, trace2) {
		t.Fatalf("same seed, different chaos trace (%d vs %d bytes)", len(trace1), len(trace2))
	}
	if res1.FaultsInjected == 0 {
		t.Fatal("chaos plan injected nothing")
	}
	if res1.FaultsInjected != res2.FaultsInjected ||
		res1.ResizeRetries != res2.ResizeRetries ||
		res1.ResizeFailures != res2.ResizeFailures ||
		res1.Degradations != res2.Degradations ||
		res1.P99(0) != res2.P99(0) {
		t.Fatalf("same seed, different chaos results:\n%+v\n%+v", res1, res2)
	}
}

// TestChaosRunSurvivesAndStaysLegal: under a moderate fault mix the
// agent keeps running to the end of the scenario, retries failed
// hypercalls, and the full invariant checker stays clean — faults bend
// the run, never break its legality.
func TestChaosRunSurvivesAndStaysLegal(t *testing.T) {
	s := short("chaos-legal", apps.Memcached(40000))
	s.Faults = chaosPlan()
	_, res := chaosTrace(t, s)
	if err := res.Check.Err(); err != nil {
		t.Fatalf("invariant violations under chaos:\n%s", res.Check)
	}
	if res.Windows == 0 {
		t.Fatal("agent did not run")
	}
	if res.FaultsInjected == 0 {
		t.Fatal("no faults injected")
	}
	if res.ResizeFailures == 0 || res.ResizeRetries == 0 {
		t.Fatalf("hfail=0.2 over 6s: failures=%d retries=%d, want both >0",
			res.ResizeFailures, res.ResizeRetries)
	}
	if res.Primaries[0].Latency.Count == 0 {
		t.Fatal("no latency samples")
	}
}

// TestChaosHeavyFaultsForceDegradation: with every hypercall failing the
// retry ladder exhausts, the agent degrades to NoHarvest, and the
// checker verifies the degraded windows are pinned to the allocation.
func TestChaosHeavyFaultsForceDegradation(t *testing.T) {
	s := short("chaos-degrade", apps.Memcached(40000))
	s.Faults = faults.Plan{HypercallFailProb: 1}
	_, res := chaosTrace(t, s)
	if err := res.Check.Err(); err != nil {
		t.Fatalf("invariant violations while degraded:\n%s", res.Check)
	}
	if res.Degradations == 0 {
		t.Fatal("permanent hypercall failure never degraded the agent")
	}
	if !res.Degraded {
		t.Fatal("agent not degraded at end of run despite faults never clearing")
	}
	if res.ResizesAborted == 0 {
		t.Fatal("no aborted resizes despite hfail=1")
	}
}

// TestChaosCrashRestartKeepsRunning: frequent crash/restart cycles with
// model loss still leave a live, legal agent — missed windows are
// counted, not fatal.
func TestChaosCrashRestartKeepsRunning(t *testing.T) {
	s := short("chaos-crash", apps.Memcached(40000))
	s.Faults = faults.Plan{CrashProb: 0.05, StallProb: 0.05, LoseModel: true}
	_, res := chaosTrace(t, s)
	if err := res.Check.Err(); err != nil {
		t.Fatalf("invariant violations across restarts:\n%s", res.Check)
	}
	if res.Crashes == 0 || res.Stalls == 0 {
		t.Fatalf("crashes=%d stalls=%d, want both >0 at prob 0.05 per window", res.Crashes, res.Stalls)
	}
	if res.MissedWindows == 0 {
		t.Fatal("250ms restarts missed no 25ms windows")
	}
	if res.Windows < 50 {
		t.Fatalf("only %d windows over 6s; agent did not keep running", res.Windows)
	}
}
