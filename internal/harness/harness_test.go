package harness

import (
	"testing"

	"smartharvest/internal/apps"
	"smartharvest/internal/core"
	"smartharvest/internal/hypervisor"
	"smartharvest/internal/sim"
)

// short returns a scenario sized for unit tests: long enough for the
// learner to settle, short enough to keep the suite fast.
func short(name string, primary apps.PrimarySpec) Scenario {
	return Scenario{
		Name:      name,
		Primaries: []apps.PrimarySpec{primary},
		Duration:  6 * sim.Second,
		Warmup:    2 * sim.Second,
		Seed:      7,
	}
}

func TestNoHarvestBaseline(t *testing.T) {
	s := short("baseline", apps.Memcached(40000))
	s.Controller = NoHarvestFactory()
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgHarvestedCores > 0.01 {
		t.Fatalf("noharvest harvested %v cores", res.AvgHarvestedCores)
	}
	if res.Policy != "noharvest" {
		t.Fatalf("policy %q", res.Policy)
	}
	if res.Primaries[0].Latency.Count == 0 {
		t.Fatal("no latency samples")
	}
	// The 1-core ElasticVM still executes ~1 core-second per second.
	if res.ElasticCPUSeconds < 5 || res.ElasticCPUSeconds > 6.5 {
		t.Fatalf("elastic cpu %v core-s over 6s on 1 core", res.ElasticCPUSeconds)
	}
}

func TestSmartHarvestProtectsTailAndHarvests(t *testing.T) {
	// The headline property (paper Figure 5): SmartHarvest harvests
	// meaningfully while keeping P99 within ~10% of no-harvesting.
	base := short("mc-base", apps.Memcached(40000))
	base.Controller = NoHarvestFactory()
	baseRes, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	s := short("mc-sh", apps.Memcached(40000))
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgHarvestedCores < 0.5 {
		t.Fatalf("smartharvest harvested only %v cores", res.AvgHarvestedCores)
	}
	p99Base := float64(baseRes.P99(0))
	p99 := float64(res.P99(0))
	if p99 > p99Base*1.25 {
		t.Fatalf("P99 %v vs baseline %v: degradation %.0f%%",
			sim.Time(int64(p99)), sim.Time(int64(p99Base)), (p99/p99Base-1)*100)
	}
	if res.Windows == 0 || res.Resizes == 0 {
		t.Fatal("agent did not run")
	}
}

func TestTinyFixedBufferHurtsTail(t *testing.T) {
	// A 1-core buffer must degrade Memcached's tail far more than
	// SmartHarvest does while harvesting more — the Figure 5 trade-off.
	base := short("mc-base", apps.Memcached(40000))
	base.Controller = NoHarvestFactory()
	baseRes, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	s := short("mc-fb1", apps.Memcached(40000))
	s.Controller = FixedBufferFactory(1)
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgHarvestedCores < 3 {
		t.Fatalf("fixed buffer 1 harvested %v; should be aggressive", res.AvgHarvestedCores)
	}
	if float64(res.P99(0)) < float64(baseRes.P99(0))*1.3 {
		t.Fatalf("fixed buffer 1 P99 %v vs base %v: expected heavy degradation",
			res.P99(0), baseRes.P99(0))
	}
}

func TestLargeFixedBufferSafeButWasteful(t *testing.T) {
	base := short("mc-base", apps.Memcached(40000))
	base.Controller = NoHarvestFactory()
	baseRes, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	s := short("mc-fb7", apps.Memcached(40000))
	s.Controller = FixedBufferFactory(7)
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.P99(0)) > float64(baseRes.P99(0))*1.2 {
		t.Fatalf("fixed buffer 7 P99 %v vs base %v; should be safe",
			res.P99(0), baseRes.P99(0))
	}
	if res.AvgHarvestedCores > 2.5 {
		t.Fatalf("fixed buffer 7 harvested %v; should be conservative", res.AvgHarvestedCores)
	}
}

func TestSpeedupHDInsight(t *testing.T) {
	s := short("is-hdi", apps.IndexServe(500))
	s.Batch = BatchHDInsight
	s.Duration = 10 * sim.Second
	// The paper's QoS-guard constants chronically arm on ms-scale
	// services under the simulator's coarser wait accounting (see
	// DESIGN.md); IndexServe runs disable the long-term guard.
	s.Controller = SmartHarvestFactory(core.SmartHarvestOptions{})
	s.LongTermSafeguard = false
	speedup, with, baseline, err := RunSpeedup(s)
	if err != nil {
		t.Fatal(err)
	}
	if speedup < 1.5 {
		t.Fatalf("hdinsight speedup %v; harvesting should help (with=%v base=%v)",
			speedup, with.BatchTime, baseline.BatchTime)
	}
	if speedup > 9 {
		t.Fatalf("hdinsight speedup %v implausible", speedup)
	}
}

func TestMultiplePrimariesShareGroup(t *testing.T) {
	s := Scenario{
		Name:      "multi",
		Primaries: []apps.PrimarySpec{apps.Memcached(40000), apps.IndexServe(500)},
		Duration:  5 * sim.Second,
		Warmup:    2 * sim.Second,
		Seed:      3,
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Primaries) != 2 {
		t.Fatalf("primaries %d", len(res.Primaries))
	}
	for _, p := range res.Primaries {
		if p.Latency.Count == 0 {
			t.Fatalf("%s recorded no latencies", p.Name)
		}
	}
	// 20 primary cores + 1 elastic: harvest opportunity is larger.
	if res.AvgHarvestedCores < 1 {
		t.Fatalf("harvested %v from two mostly-idle primaries", res.AvgHarvestedCores)
	}
}

func TestIPIMechanismHarvestsMore(t *testing.T) {
	// Figure 15's headline: with the same policy, IPIs harvest at least
	// as much as cpugroups (faster effects and no post-resize sleep).
	mk := func(mech hypervisor.Mechanism) float64 {
		s := short("is", apps.IndexServe(1000))
		s.Mechanism = mech
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgHarvestedCores
	}
	cg := mk(hypervisor.CpuGroups)
	ipi := mk(hypervisor.IPI)
	if ipi < cg*0.9 {
		t.Fatalf("IPI harvested %v vs cpugroups %v; should not be materially worse", ipi, cg)
	}
}

func TestCollectBusyStats(t *testing.T) {
	s := short("stats", apps.Memcached(40000))
	s.Controller = NoHarvestFactory()
	s.CollectBusyStats = true
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgBusyCores <= 0 || res.AvgWindowPeak <= res.AvgBusyCores {
		t.Fatalf("busy stats avg=%v peak=%v", res.AvgBusyCores, res.AvgWindowPeak)
	}
	if res.BusyWindowPeak.Len() == 0 {
		t.Fatal("no peak series")
	}
}

func TestRecordSeries(t *testing.T) {
	s := short("series", apps.Memcached(40000))
	s.RecordSeries = true
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.TargetSeries == nil || res.TargetSeries.Len() == 0 {
		t.Fatal("no target series")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		s := short("det", apps.Memcached(40000))
		s.Duration = 3 * sim.Second
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.P99(0) != b.P99(0) || a.AvgHarvestedCores != b.AvgHarvestedCores ||
		a.Resizes != b.Resizes || a.Safeguards != b.Safeguards {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

func TestSeedChangesResults(t *testing.T) {
	run := func(seed uint64) *Result {
		s := short("seed", apps.Memcached(40000))
		s.Duration = 3 * sim.Second
		s.Seed = seed
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if run(1).Primaries[0].Offered == run(2).Primaries[0].Offered {
		t.Fatal("different seeds produced identical offered counts")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(Scenario{Name: "empty"}); err == nil {
		t.Fatal("empty scenario accepted")
	}
	if _, _, _, err := RunSpeedup(short("x", apps.Memcached(1000))); err == nil {
		t.Fatal("speedup without finite batch accepted")
	}
	s := short("x", apps.Memcached(1000))
	s.Batch = BatchKind(42)
	if _, err := Run(s); err == nil {
		t.Fatal("unknown batch kind accepted")
	}
}

func TestBatchKindString(t *testing.T) {
	want := map[BatchKind]string{
		BatchCPUBully: "cpubully", BatchHDInsight: "hdinsight",
		BatchTeraSort: "terasort", BatchNone: "none",
	}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d -> %q", k, k.String())
		}
	}
}

func TestFactories(t *testing.T) {
	cases := map[string]ControllerFactory{
		"smartharvest":  SmartHarvestFactory(core.SmartHarvestOptions{}),
		"fixedbuffer-3": FixedBufferFactory(3),
		"prevpeak":      PrevPeakFactory(1, false),
		"noharvest":     NoHarvestFactory(),
		"ewma":          EWMAFactory(0.3, 1),
	}
	for want, f := range cases {
		if got := f(10).Name(); got != want {
			t.Errorf("factory produced %q, want %q", got, want)
		}
	}
}

// TestHeadlineLatencyProtection is the paper's central claim as a
// regression test: for every primary workload at its standard load,
// SmartHarvest (configured as the experiments configure it) keeps P99
// within +10% of the no-harvesting baseline while harvesting a nonzero
// number of cores.
func TestHeadlineLatencyProtection(t *testing.T) {
	specs := []struct {
		spec  apps.PrimarySpec
		guard bool
	}{
		{apps.Memcached(40000), true}, // sub-ms class: guard on
		{apps.IndexServe(500), false}, // ms class: guard off (DESIGN.md)
		{apps.Moses(400), false},
		{apps.ImgDNN(2000), false},
	}
	for _, c := range specs {
		c := c
		t.Run(c.spec.Name, func(t *testing.T) {
			mk := func(ctrl ControllerFactory, guard bool) *Result {
				s := Scenario{
					Name:              "headline-" + c.spec.Name,
					Primaries:         []apps.PrimarySpec{c.spec},
					Duration:          8 * sim.Second,
					Warmup:            2 * sim.Second,
					Seed:              17,
					Controller:        ctrl,
					LongTermSafeguard: guard,
				}
				res, err := Run(s)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			base := mk(NoHarvestFactory(), false)
			res := mk(SmartHarvestFactory(core.SmartHarvestOptions{}), c.guard)
			if res.AvgHarvestedCores <= 0.05 {
				t.Fatalf("harvested only %v cores", res.AvgHarvestedCores)
			}
			limit := float64(base.P99(0)) * 1.10
			if float64(res.P99(0)) > limit {
				t.Fatalf("P99 %v exceeds +10%% of baseline %v",
					sim.Time(res.P99(0)), sim.Time(base.P99(0)))
			}
		})
	}
}

// TestHeadlineAcrossSeeds re-checks the latency-protection property for
// the most sensitive workload across several seeds (the paper averages
// three runs; we assert the bound holds in each).
func TestHeadlineAcrossSeeds(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		seed := seed
		mk := func(ctrl ControllerFactory) *Result {
			res, err := Run(Scenario{
				Name:              "seeds",
				Primaries:         []apps.PrimarySpec{apps.Memcached(40000)},
				Duration:          6 * sim.Second,
				Warmup:            2 * sim.Second,
				Seed:              seed,
				Controller:        ctrl,
				LongTermSafeguard: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		base := mk(NoHarvestFactory())
		res := mk(SmartHarvestFactory(core.SmartHarvestOptions{}))
		if float64(res.P99(0)) > float64(base.P99(0))*1.10 {
			t.Errorf("seed %d: P99 %v vs base %v exceeds +10%%",
				seed, res.P99(0), base.P99(0))
		}
		if res.AvgHarvestedCores <= 0 {
			t.Errorf("seed %d: no harvest", seed)
		}
	}
}

// TestIPICrossoverForFixedBuffers checks Figure 15's central crossover: a
// small fixed buffer that badly violates the latency bound on the stock
// cpugroups mechanism becomes safe with merge-call+IPI reassignment.
func TestIPICrossoverForFixedBuffers(t *testing.T) {
	mk := func(mech hypervisor.Mechanism, ctrl ControllerFactory) *Result {
		res, err := Run(Scenario{
			Name:       "crossover",
			Primaries:  []apps.PrimarySpec{apps.IndexServe(1000)},
			Duration:   8 * sim.Second,
			Warmup:     2 * sim.Second,
			Seed:       19,
			Mechanism:  mech,
			Controller: ctrl,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := mk(hypervisor.CpuGroups, NoHarvestFactory())
	slowFB := mk(hypervisor.CpuGroups, FixedBufferFactory(2))
	fastFB := mk(hypervisor.IPI, FixedBufferFactory(2))
	limit := float64(base.P99(0)) * 1.10
	if float64(slowFB.P99(0)) <= limit {
		t.Fatalf("fixed buffer 2 on cpugroups P99 %v within bound; expected violation",
			sim.Time(slowFB.P99(0)))
	}
	if float64(fastFB.P99(0)) > limit {
		t.Fatalf("fixed buffer 2 on IPIs P99 %v exceeds bound %v; crossover missing",
			sim.Time(fastFB.P99(0)), sim.Time(int64(limit)))
	}
	// And the buffer harvests comparably on both mechanisms.
	if fastFB.AvgHarvestedCores < slowFB.AvgHarvestedCores*0.8 {
		t.Fatalf("IPI harvest %v much lower than cpugroups %v",
			fastFB.AvgHarvestedCores, slowFB.AvgHarvestedCores)
	}
}
