package memharvest

import (
	"testing"

	"smartharvest/internal/sim"
)

func run(t *testing.T, p Policy, seed uint64) *Result {
	t.Helper()
	res, err := Run(Config{Seed: seed}, p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLearnedHarvestsMemory(t *testing.T) {
	res := run(t, NewLearned(64), 3)
	// Demand averages ~24 GB of 64 plus a safety margin; a meaningful
	// chunk must be harvested.
	if res.AvgHarvestedGB < 10 {
		t.Fatalf("harvested %v GB", res.AvgHarvestedGB)
	}
	if res.AvgHarvestedGB > 50 {
		t.Fatalf("harvested %v GB; implausibly aggressive", res.AvgHarvestedGB)
	}
}

func TestLearnedBeatsNaiveHeadroomOnFrontier(t *testing.T) {
	learned := run(t, NewLearned(64), 3)
	// A small fixed headroom harvests more but faults much more; a big
	// one faults less but harvests much less. The learner should not be
	// dominated by either (same or better on one axis when matched on
	// the other).
	small := run(t, NewFixedHeadroom(64, 2), 3)
	big := run(t, NewFixedHeadroom(64, 24), 3)
	if small.FaultSeconds <= learned.FaultSeconds && small.AvgHarvestedGB >= learned.AvgHarvestedGB {
		t.Fatalf("learned dominated by fixed-2: learned=%+v fixed=%+v", learned, small)
	}
	if big.FaultSeconds <= learned.FaultSeconds && big.AvgHarvestedGB >= learned.AvgHarvestedGB {
		t.Fatalf("learned dominated by fixed-24: learned=%+v fixed=%+v", learned, big)
	}
}

func TestFixedHeadroomTradeoff(t *testing.T) {
	small := run(t, NewFixedHeadroom(64, 2), 5)
	big := run(t, NewFixedHeadroom(64, 20), 5)
	if small.AvgHarvestedGB <= big.AvgHarvestedGB {
		t.Fatalf("small headroom harvested %v <= big %v", small.AvgHarvestedGB, big.AvgHarvestedGB)
	}
	if small.FaultSeconds < big.FaultSeconds {
		t.Fatalf("small headroom faulted less (%v) than big (%v)", small.FaultSeconds, big.FaultSeconds)
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, NewLearned(64), 11)
	b := run(t, NewLearned(64), 11)
	if a.AvgHarvestedGB != b.AvgHarvestedGB || a.FaultSeconds != b.FaultSeconds ||
		a.Reclaims != b.Reclaims {
		t.Fatalf("runs diverged: %+v vs %+v", a, b)
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{TotalGB: 2},
		{TotalGB: 64, DemandMin: 50, DemandMax: 40},
		{TotalGB: 64, DemandMin: 10, DemandMax: 100},
		{TotalGB: 64, SamplesPerWindow: 1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg, NewLearned(64)); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	if NewLearned(64).Name() != "smartharvest-mem" {
		t.Error("learned name")
	}
	if NewFixedHeadroom(64, 8).Name() != "fixed-8GB" {
		t.Error("fixed name")
	}
}

func TestFixedHeadroomValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewFixedHeadroom(8, 10)
}

func TestReclaimLatencyMatters(t *testing.T) {
	// With instant reclaim, faults should drop sharply versus slow
	// reclaim under the same policy and demand.
	slowCfg := Config{Seed: 9, ReclaimPerGB: 500 * sim.Millisecond}
	fastCfg := Config{Seed: 9, ReclaimPerGB: sim.Millisecond}
	slow, err := Run(slowCfg, NewFixedHeadroom(64, 4))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(fastCfg, NewFixedHeadroom(64, 4))
	if err != nil {
		t.Fatal(err)
	}
	if fast.FaultSeconds >= slow.FaultSeconds {
		t.Fatalf("fast reclaim faulted %v >= slow %v", fast.FaultSeconds, slow.FaultSeconds)
	}
}
