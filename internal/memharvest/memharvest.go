// Package memharvest prototypes the paper's stated future work (§3.2):
// applying SmartHarvest's online-learning approach to a resource other
// than CPU cores. It simulates a server's memory being harvested from
// primary VMs for an ElasticVM, with the asymmetries the paper calls out
// as the reason memory is harder than cores:
//
//   - reclaiming a page for the primaries is slow (ballooning, copying,
//     zeroing), modeled as a per-GB reclaim latency during which the
//     primaries run short and accumulate fault time;
//   - handing memory to the ElasticVM is comparatively cheap.
//
// The controller is the same cost-sensitive CSOAA learner the CPU agent
// uses — per-GB classes, the five window features over demand samples,
// the skewed cost function, and a conservative safeguard — demonstrating
// that the learning layer transfers unchanged even though the actuation
// layer is completely different.
package memharvest

import (
	"fmt"

	"smartharvest/internal/learner"
	"smartharvest/internal/sim"
	"smartharvest/internal/simrng"
)

// Config describes one memory-harvesting run.
type Config struct {
	// TotalGB is the primaries' memory allocation in GB (the harvestable
	// pool; the ElasticVM's own minimum is outside it).
	TotalGB int
	// Window is the learning window (default 1 s — memory demand moves
	// far slower than CPU demand).
	Window sim.Time
	// SamplesPerWindow is how many demand observations feed the features
	// (default 20).
	SamplesPerWindow int
	// ReclaimPerGB is how long returning one harvested GB to the
	// primaries takes (default 200 ms: balloon deflate + zeroing).
	ReclaimPerGB sim.Time
	// Duration and Warmup bound the measured run.
	Duration sim.Time
	Warmup   sim.Time
	// Demand parameterizes the primaries' working-set process: a slow
	// random walk between DemandMin and DemandMax GB with occasional
	// surges (allocation spikes).
	DemandMin, DemandMax float64
	SurgeRate            float64 // surges per second
	SurgeGB              float64 // surge amplitude
	// Seed drives randomness.
	Seed uint64
}

func (c *Config) applyDefaults() {
	if c.TotalGB == 0 {
		c.TotalGB = 64
	}
	if c.Window == 0 {
		c.Window = sim.Second
	}
	if c.SamplesPerWindow == 0 {
		c.SamplesPerWindow = 20
	}
	if c.ReclaimPerGB == 0 {
		c.ReclaimPerGB = 200 * sim.Millisecond
	}
	if c.Duration == 0 {
		c.Duration = 120 * sim.Second
	}
	if c.Warmup == 0 {
		c.Warmup = 10 * sim.Second
	}
	if c.DemandMax == 0 {
		c.DemandMin, c.DemandMax = 8, 40
	}
	if c.SurgeRate == 0 {
		c.SurgeRate = 0.1
	}
	if c.SurgeGB == 0 {
		c.SurgeGB = 12
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

func (c *Config) validate() error {
	if c.TotalGB < 4 {
		return fmt.Errorf("memharvest: TotalGB %d too small", c.TotalGB)
	}
	if c.DemandMin < 0 || c.DemandMax > float64(c.TotalGB) || c.DemandMin >= c.DemandMax {
		return fmt.Errorf("memharvest: bad demand range [%v, %v]", c.DemandMin, c.DemandMax)
	}
	if c.SamplesPerWindow < 2 {
		return fmt.Errorf("memharvest: need at least 2 samples per window")
	}
	return nil
}

// Policy decides how many GB to leave assigned to the primaries for the
// next window, given this window's demand samples (in whole GB).
type Policy interface {
	Name() string
	Decide(samples []int, peak int) int
}

// FixedHeadroom keeps demand + k GB with the primaries.
type FixedHeadroom struct {
	total int
	k     int
}

// NewFixedHeadroom builds the baseline with headroom k GB.
func NewFixedHeadroom(total, k int) *FixedHeadroom {
	if k < 0 || k > total {
		panic("memharvest: bad headroom")
	}
	return &FixedHeadroom{total: total, k: k}
}

// Name implements Policy.
func (f *FixedHeadroom) Name() string { return fmt.Sprintf("fixed-%dGB", f.k) }

// Decide implements Policy.
func (f *FixedHeadroom) Decide(samples []int, peak int) int {
	t := samples[len(samples)-1] + f.k
	if t > f.total {
		t = f.total
	}
	return t
}

// Learned reuses the CPU agent's CSOAA learner over per-GB classes.
type Learned struct {
	total int
	fe    *learner.FeatureExtractor
	model *learner.CSOAA
	cost  learner.CostFunc
	x     []float64
	prevX []float64
	costs []float64
	have  bool
}

// NewLearned builds the online-learning policy for a total of `total` GB.
func NewLearned(total int) *Learned {
	classes := total + 1
	l := &Learned{
		total: total,
		fe:    learner.NewFeatureExtractor(total),
		model: learner.NewCSOAA(classes, learner.NumFeatures, 0.1),
		cost:  learner.SkewedCost{UnderPenalty: float64(total) / 4},
		x:     make([]float64, learner.NumFeatures),
		prevX: make([]float64, learner.NumFeatures),
		costs: make([]float64, classes),
	}
	l.model.InitBias(learner.FillCosts(l.costs, l.cost, total))
	return l
}

// Name implements Policy.
func (l *Learned) Name() string { return "smartharvest-mem" }

// Decide implements Policy: train on the previous prediction's features
// against this window's peak, then predict the next peak.
func (l *Learned) Decide(samples []int, peak int) int {
	if l.have {
		l.model.Update(l.prevX, learner.FillCosts(l.costs, l.cost, peak))
	}
	f := l.fe.Compute(samples)
	f.Vector(l.x, float64(l.total))
	copy(l.prevX, l.x)
	l.have = true
	t := l.model.Predict(l.x)
	if t < peak {
		// Never assign below current observed use (the CPU agent's
		// busy+1 floor, in GB).
		t = peak
	}
	if t > l.total {
		t = l.total
	}
	return t
}

// Result summarizes a run.
type Result struct {
	Policy string
	// AvgHarvestedGB is the time-weighted average memory the ElasticVM
	// held.
	AvgHarvestedGB float64
	// FaultSeconds integrates (demand − available) over time whenever
	// the primaries ran short — GB-seconds of demand served from faults
	// while reclaim was in flight.
	FaultSeconds float64
	// ShortEpisodes counts the windows in which the primaries ran short.
	ShortEpisodes int
	// Reclaims counts reclaim operations.
	Reclaims int
}

// Run executes the simulation.
func Run(cfg Config, policy Policy) (*Result, error) {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := simrng.New(cfg.Seed)
	loop := sim.NewLoop()

	// Demand process state.
	demand := (cfg.DemandMin + cfg.DemandMax) / 2
	surgeUntil := sim.Time(0)
	sampleGap := cfg.Window / sim.Time(cfg.SamplesPerWindow)

	// Assignment state.
	assigned := float64(cfg.TotalGB) // GB currently with the primaries
	reclaimDone := sim.Time(0)       // in-flight reclaim completes here
	var reclaimTarget float64

	res := &Result{Policy: policy.Name()}
	var harvestedIntegral, faultIntegral float64 // GB·ns
	var measuredFrom sim.Time

	samples := make([]int, 0, cfg.SamplesPerWindow)
	var prevT sim.Time

	step := func(now sim.Time) {
		dt := float64(now - prevT)
		prevT = now

		// Effective memory available to the primaries: reclaim lands
		// linearly over the reclaim interval.
		avail := assigned
		if now < reclaimDone {
			remaining := float64(reclaimDone-now) / float64(cfg.ReclaimPerGB)
			if gap := reclaimTarget - assigned; gap > 0 {
				got := gap - remaining
				if got < 0 {
					got = 0
				}
				avail = assigned + got
			}
		} else if reclaimTarget > assigned {
			assigned = reclaimTarget
			avail = assigned
		}

		if now >= cfg.Warmup {
			if measuredFrom == 0 {
				measuredFrom = now
			}
			harvested := float64(cfg.TotalGB) - avail
			if harvested > 0 {
				harvestedIntegral += harvested * dt
			}
			if short := demand - avail; short > 0 {
				faultIntegral += short * dt
			}
		}

		// Advance the demand random walk.
		demand += rng.Normal(0, 0.4)
		if demand < cfg.DemandMin {
			demand = cfg.DemandMin
		}
		if demand > cfg.DemandMax {
			demand = cfg.DemandMax
		}
		if rng.Bool(cfg.SurgeRate * sampleGap.Seconds()) {
			surgeUntil = now + sim.Time(rng.Exp(float64(3*sim.Second)))
		}
		if now < surgeUntil {
			if d := demand + cfg.SurgeGB; d <= float64(cfg.TotalGB) {
				demand = d
			} else {
				demand = float64(cfg.TotalGB)
			}
		}

		samples = append(samples, int(demand+0.5))
	}

	wasShort := false
	windowEnd := func(now sim.Time) {
		peak := 0
		for _, s := range samples {
			if s > peak {
				peak = s
			}
		}
		short := demand > assigned
		if short && now >= cfg.Warmup {
			if !wasShort {
				res.ShortEpisodes++
			}
		}
		wasShort = short

		target := policy.Decide(samples, peak)
		samples = samples[:0]
		if short {
			// Safeguard: reclaim up to the observed peak plus slack.
			target = peak + 2
			if target > cfg.TotalGB {
				target = cfg.TotalGB
			}
		}
		tf := float64(target)
		switch {
		case tf > assigned:
			// Reclaim is slow: schedule linear arrival.
			res.Reclaims++
			reclaimTarget = tf
			reclaimDone = now + sim.Time(float64(cfg.ReclaimPerGB)*(tf-assigned))
		case tf < assigned:
			// Growing the ElasticVM is cheap and immediate.
			assigned = tf
			reclaimTarget = tf
			reclaimDone = now
		}
	}

	loop.NewTicker(sampleGap, sampleGap, func() { step(loop.Now()) })
	loop.NewTicker(cfg.Window, cfg.Window, func() { windowEnd(loop.Now()) })
	end := cfg.Warmup + cfg.Duration
	loop.RunUntil(end)

	span := float64(end - measuredFrom)
	if span > 0 {
		res.AvgHarvestedGB = harvestedIntegral / span
		res.FaultSeconds = faultIntegral / 1e9
	}
	return res, nil
}
