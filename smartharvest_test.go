package smartharvest_test

import (
	"testing"

	"smartharvest"
	"smartharvest/internal/core"
)

func TestPublicAPIQuickstart(t *testing.T) {
	res, err := smartharvest.Run(smartharvest.Scenario{
		Name:      "api-quickstart",
		Primaries: []smartharvest.PrimarySpec{smartharvest.Memcached(40000)},
		Duration:  4 * smartharvest.Second,
		Warmup:    2 * smartharvest.Second,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Primaries[0].Latency.Count == 0 {
		t.Fatal("no latencies via public API")
	}
	if res.Policy != "smartharvest" {
		t.Fatalf("default policy %q", res.Policy)
	}
}

func TestPublicAPIPolicies(t *testing.T) {
	for _, f := range []smartharvest.ControllerFactory{
		smartharvest.NewSmartHarvest(smartharvest.SmartHarvestOptions{}),
		smartharvest.NewFixedBuffer(4),
		smartharvest.NewPrevPeak(10, true),
		smartharvest.NewNoHarvest(),
		smartharvest.NewEWMA(0.3, 1),
	} {
		if f(10) == nil {
			t.Fatal("factory returned nil controller")
		}
	}
}

// staticPolicy is a trivial custom policy: always leave a fixed number of
// cores with the primaries.
type staticPolicy struct{ target int }

func (p staticPolicy) Name() string                        { return "static" }
func (p staticPolicy) OnWindowEnd(smartharvest.Window) int { return p.target }
func (p staticPolicy) OnPoll(busy, cur int) (int, bool)    { return 0, false }
func (p staticPolicy) Safeguards() bool                    { return false }

func TestPublicAPICustomController(t *testing.T) {
	res, err := smartharvest.Run(smartharvest.Scenario{
		Name:       "custom",
		Primaries:  []smartharvest.PrimarySpec{smartharvest.Memcached(10000)},
		Controller: smartharvest.Custom(func(alloc int) smartharvest.Controller { return staticPolicy{target: alloc - 3} }),
		Duration:   3 * smartharvest.Second,
		Warmup:     smartharvest.Second,
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "static" {
		t.Fatalf("policy %q", res.Policy)
	}
	// Static target of alloc-3 leaves 3 harvested cores (+ the minimum).
	if res.AvgHarvestedCores < 2.5 || res.AvgHarvestedCores > 3.1 {
		t.Fatalf("harvested %v, want ~3", res.AvgHarvestedCores)
	}
}

func TestPublicAPISpeedup(t *testing.T) {
	s := smartharvest.Scenario{
		Name:      "speedup",
		Primaries: []smartharvest.PrimarySpec{smartharvest.Moses(400)},
		Batch:     smartharvest.BatchHDInsight,
		Duration:  6 * smartharvest.Second,
		Warmup:    smartharvest.Second,
		Seed:      3,
		Controller: smartharvest.NewSmartHarvest(smartharvest.SmartHarvestOptions{
			Safeguard: smartharvest.ConservativeSafeguard,
		}),
	}
	speedup, _, _, err := smartharvest.RunSpeedup(s)
	if err != nil {
		t.Fatal(err)
	}
	if speedup <= 1 {
		t.Fatalf("speedup %v", speedup)
	}
}

// Interface compatibility: the exported aliases must be the internal
// types so custom controllers interoperate.
var _ core.Controller = staticPolicy{}
