// Package smartharvest is a from-scratch Go reproduction of SmartHarvest
// (Wang et al., EuroSys '21): a system that harvests allocated-but-idle
// CPU cores from black-box primary VMs for a co-located low-priority
// ElasticVM, using online cost-sensitive learning to predict the
// primaries' peak core demand every few milliseconds while protecting
// their tail latency with a two-level safeguard.
//
// This root package is the public facade. It re-exports the pieces a
// downstream user composes:
//
//   - Scenario / Run: describe and execute a full experiment on the
//     simulated Hyper-V-like machine (primary VMs with latency-critical
//     workloads, an ElasticVM with a batch workload, and the EVMAgent).
//   - Controller and the policy constructors: SmartHarvest's online
//     learner plus the paper's baselines (fixed buffer, previous-peak
//     heuristics, EWMA, no-harvest). Implement Controller yourself to
//     plug in a custom harvesting policy.
//   - The workload catalog: calibrated models of the paper's four
//     latency-critical primaries, the square-wave synthetic, and three
//     batch applications.
//
// A minimal run:
//
//	res, err := smartharvest.Run(smartharvest.Scenario{
//		Name:      "quickstart",
//		Primaries: []smartharvest.PrimarySpec{smartharvest.Memcached(40000)},
//		Duration:  30 * smartharvest.Second,
//	})
//
// The lower-level building blocks (the discrete-event loop, the simulated
// hypervisor, the CSOAA learner) live in internal/ packages; see DESIGN.md
// for the architecture and EXPERIMENTS.md for the paper-reproduction
// results.
package smartharvest

import (
	"smartharvest/internal/apps"
	"smartharvest/internal/core"
	"smartharvest/internal/harness"
	"smartharvest/internal/hypervisor"
	"smartharvest/internal/sim"
)

// Time is a span of virtual time in nanoseconds.
type Time = sim.Time

// Common durations.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Scenario describes one experiment: the primary workloads, the batch
// workload, the reassignment mechanism, the harvesting policy, and the
// run length. See harness.Scenario for field documentation.
type Scenario = harness.Scenario

// Result carries everything a run produces: per-primary latency
// summaries, harvested-core averages, batch completion, agent behaviour
// counters, and reassignment-latency distributions.
type Result = harness.Result

// PrimaryResult is one primary workload's outcome within a Result.
type PrimaryResult = harness.PrimaryResult

// PrimarySpec describes a primary application at an offered load.
type PrimarySpec = apps.PrimarySpec

// ChurnEvent schedules a primary-VM arrival or departure during a run
// (Scenario.Churn).
type ChurnEvent = harness.ChurnEvent

// BatchKind selects the ElasticVM workload.
type BatchKind = harness.BatchKind

// Batch workload choices.
const (
	BatchCPUBully  = harness.BatchCPUBully
	BatchHDInsight = harness.BatchHDInsight
	BatchTeraSort  = harness.BatchTeraSort
	BatchNone      = harness.BatchNone
)

// Mechanism selects how core reassignments take effect.
type Mechanism = hypervisor.Mechanism

// Reassignment mechanisms: the stock cpugroups path (hypercalls plus
// non-preemptive scheduling-event delays) and the paper's merge-call+IPI
// path.
const (
	CpuGroups = hypervisor.CpuGroups
	IPI       = hypervisor.IPI
)

// Controller is the policy interface the EVMAgent drives: it decides the
// primary-core target at every learning-window boundary (and, for
// reactive policies, at every poll). Implement it to plug a custom
// harvesting policy into Scenario.Controller.
type Controller = core.Controller

// Window is the per-learning-window information a Controller sees.
type Window = core.Window

// ControllerFactory builds a Controller for a primary core allocation.
type ControllerFactory = harness.ControllerFactory

// SmartHarvestOptions tunes the paper's learner (learning rate, cost
// function, short-term safeguard mode).
type SmartHarvestOptions = core.SmartHarvestOptions

// SafeguardMode selects the short-term safeguard response.
type SafeguardMode = core.SafeguardMode

// Short-term safeguard modes (paper Figure 10).
const (
	ConservativeSafeguard = core.ConservativeSafeguard
	AggressiveSafeguard   = core.AggressiveSafeguard
)

// Run executes a scenario on the simulated machine and returns its
// results. Runs are deterministic given Scenario.Seed.
func Run(s Scenario) (*Result, error) { return harness.Run(s) }

// RunOption configures RunAll.
type RunOption = harness.RunOption

// Parallelism bounds RunAll's worker pool; 0 or less means GOMAXPROCS.
func Parallelism(n int) RunOption { return harness.Parallelism(n) }

// RunAll executes scenarios concurrently on a bounded worker pool and
// returns results in input order. Each scenario is an independent
// simulation, so results are identical to running them serially; errors
// for individual scenarios are joined and reported together, with the
// corresponding result slots left nil.
func RunAll(scenarios []Scenario, opts ...RunOption) ([]*Result, error) {
	return harness.RunAll(scenarios, opts...)
}

// RunSpeedup runs the scenario twice — with its policy and with
// NoHarvest — and returns the batch job's completion-time speedup (the
// paper's Figure 6 metric).
func RunSpeedup(s Scenario) (speedup float64, with, baseline *Result, err error) {
	return harness.RunSpeedup(s)
}

// Policies.

// NewSmartHarvest builds the paper's online-learning policy.
func NewSmartHarvest(opts SmartHarvestOptions) ControllerFactory {
	return harness.SmartHarvestFactory(opts)
}

// NewFixedBuffer builds the PerfIso-style fixed idle buffer of k cores.
func NewFixedBuffer(k int) ControllerFactory { return harness.FixedBufferFactory(k) }

// NewPrevPeak builds the previous-peak heuristic over n windows;
// returnOne selects PrevPeak10's one-core-at-a-time safeguard response.
func NewPrevPeak(n int, returnOne bool) ControllerFactory {
	return harness.PrevPeakFactory(n, returnOne)
}

// NewNoHarvest builds the null policy (the latency baseline).
func NewNoHarvest() ControllerFactory { return harness.NoHarvestFactory() }

// NewEWMA builds the exponentially-weighted-moving-average baseline.
func NewEWMA(alpha float64, margin int) ControllerFactory {
	return harness.EWMAFactory(alpha, margin)
}

// Custom wraps a user-provided Controller constructor so it can be used
// as a Scenario.Controller.
func Custom(build func(primaryAlloc int) Controller) ControllerFactory {
	return func(alloc int) core.Controller { return build(alloc) }
}

// Workloads — the paper's §5.1 catalog, calibrated per DESIGN.md.

// Memcached models the in-memory key-value store at the given QPS.
func Memcached(qps float64) PrimarySpec { return apps.Memcached(qps) }

// MemcachedSwinging models a key-value store with sharp aperiodic load
// swings (the Figure 11 stress case).
func MemcachedSwinging(qps float64) PrimarySpec { return apps.MemcachedSwinging(qps) }

// IndexServe models the web-search index-serving node at the given QPS.
func IndexServe(qps float64) PrimarySpec { return apps.IndexServe(qps) }

// Moses models the TailBench machine-translation service.
func Moses(qps float64) PrimarySpec { return apps.Moses(qps) }

// ImgDNN models the TailBench handwriting-recognition service.
func ImgDNN(qps float64) PrimarySpec { return apps.ImgDNN(qps) }

// SquareWave models the Figure 7 synthetic square-wave primary.
func SquareWave(high, low int, halfPeriod Time) PrimarySpec {
	return apps.SquareWave(high, low, halfPeriod)
}

// MemcachedVaryingLoad models Table 2's stepped-load Memcached.
func MemcachedVaryingLoad(phaseQPS []float64, phaseLen Time) PrimarySpec {
	return apps.MemcachedVaryingLoad(phaseQPS, phaseLen)
}
