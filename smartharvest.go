// Package smartharvest is a from-scratch Go reproduction of SmartHarvest
// (Wang et al., EuroSys '21): a system that harvests allocated-but-idle
// CPU cores from black-box primary VMs for a co-located low-priority
// ElasticVM, using online cost-sensitive learning to predict the
// primaries' peak core demand every few milliseconds while protecting
// their tail latency with a two-level safeguard.
//
// This root package is the public facade. It re-exports the pieces a
// downstream user composes:
//
//   - Scenario / Run: describe and execute a full experiment on the
//     simulated Hyper-V-like machine (primary VMs with latency-critical
//     workloads, an ElasticVM with a batch workload, and the EVMAgent).
//   - Controller and the policy constructors: SmartHarvest's online
//     learner plus the paper's baselines (fixed buffer, previous-peak
//     heuristics, EWMA, no-harvest). Implement Controller yourself to
//     plug in a custom harvesting policy.
//   - The workload catalog: calibrated models of the paper's four
//     latency-critical primaries, the square-wave synthetic, and three
//     batch applications.
//
// A minimal run:
//
//	res, err := smartharvest.Run(smartharvest.Scenario{
//		Name:      "quickstart",
//		Primaries: []smartharvest.PrimarySpec{smartharvest.Memcached(40000)},
//		Duration:  30 * smartharvest.Second,
//	})
//
// The lower-level building blocks (the discrete-event loop, the simulated
// hypervisor, the CSOAA learner) live in internal/ packages; see DESIGN.md
// for the architecture and EXPERIMENTS.md for the paper-reproduction
// results.
package smartharvest

import (
	"io"

	"smartharvest/internal/apps"
	"smartharvest/internal/check"
	"smartharvest/internal/core"
	"smartharvest/internal/faults"
	"smartharvest/internal/harness"
	"smartharvest/internal/hypervisor"
	"smartharvest/internal/learner"
	"smartharvest/internal/market"
	"smartharvest/internal/obs"
	"smartharvest/internal/sim"
)

// Time is a span of virtual time in nanoseconds.
type Time = sim.Time

// Common durations.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Scenario describes one experiment: the primary workloads, the batch
// workload, the reassignment mechanism, the harvesting policy, and the
// run length. See harness.Scenario for field documentation.
type Scenario = harness.Scenario

// Result carries everything a run produces: per-primary latency
// summaries, harvested-core averages, batch completion, agent behaviour
// counters, and reassignment-latency distributions.
type Result = harness.Result

// PrimaryResult is one primary workload's outcome within a Result.
type PrimaryResult = harness.PrimaryResult

// PrimarySpec describes a primary application at an offered load.
type PrimarySpec = apps.PrimarySpec

// ChurnEvent schedules a primary-VM arrival or departure during a run
// (Scenario.Churn).
type ChurnEvent = harness.ChurnEvent

// BatchKind selects the ElasticVM workload.
type BatchKind = harness.BatchKind

// Batch workload choices.
const (
	BatchCPUBully  = harness.BatchCPUBully
	BatchHDInsight = harness.BatchHDInsight
	BatchTeraSort  = harness.BatchTeraSort
	BatchFinite    = harness.BatchFinite
	BatchNone      = harness.BatchNone
)

// ParseBatchKind parses a BatchKind from its String form ("cpubully",
// "hdinsight", "terasort", "none").
func ParseBatchKind(s string) (BatchKind, error) { return harness.ParseBatchKind(s) }

// Mechanism selects how core reassignments take effect.
type Mechanism = hypervisor.Mechanism

// Reassignment mechanisms: the stock cpugroups path (hypercalls plus
// non-preemptive scheduling-event delays) and the paper's merge-call+IPI
// path.
const (
	CpuGroups = hypervisor.CpuGroups
	IPI       = hypervisor.IPI
)

// ParseMechanism parses a Mechanism from its String form ("cpugroups",
// "ipis").
func ParseMechanism(s string) (Mechanism, error) { return hypervisor.ParseMechanism(s) }

// Controller is the policy interface the EVMAgent drives: it decides the
// primary-core target at every learning-window boundary (and, for
// reactive policies, at every poll). Implement it to plug a custom
// harvesting policy into Scenario.Controller.
type Controller = core.Controller

// Window is the per-learning-window information a Controller sees.
type Window = core.Window

// ControllerFactory builds a Controller for a primary core allocation.
type ControllerFactory = harness.ControllerFactory

// SmartHarvestOptions tunes the paper's learner (learning rate, cost
// function, short-term safeguard mode).
type SmartHarvestOptions = core.SmartHarvestOptions

// SafeguardMode selects the short-term safeguard response.
type SafeguardMode = core.SafeguardMode

// Short-term safeguard modes (paper Figure 10).
const (
	ConservativeSafeguard = core.ConservativeSafeguard
	AggressiveSafeguard   = core.AggressiveSafeguard
)

// ParseSafeguardMode parses a SafeguardMode from its String form
// ("conservative", "aggressive").
func ParseSafeguardMode(s string) (SafeguardMode, error) { return core.ParseSafeguardMode(s) }

// PredictorKind selects the peak predictor the default SmartHarvest
// controller learns with (Scenario.Predictor / WithPredictor). The zero
// value is the paper's CSOAA learner.
type PredictorKind = harness.PredictorKind

// Predictor choices — the built-in zoo. See internal/learner for the
// models and DESIGN.md §10 for the selection trade-offs.
const (
	PredictorCSOAA    = harness.PredictorCSOAA
	PredictorAdaGrad  = harness.PredictorAdaGrad
	PredictorEWMA     = harness.PredictorEWMA
	PredictorPeriodic = harness.PredictorPeriodic
	PredictorMLP      = harness.PredictorMLP
	PredictorEnsemble = harness.PredictorEnsemble
)

// ParsePredictor parses a PredictorKind from its String form ("csoaa",
// "adagrad", "ewma", "periodic", "mlp", "ensemble"). Unknown names
// return an error wrapping ErrUnknownPredictor.
func ParsePredictor(s string) (PredictorKind, error) { return harness.ParsePredictor(s) }

// PredictorNames returns the registered predictor names, sorted — the
// valid inputs to ParsePredictor.
func PredictorNames() []string { return learner.Names() }

// NewSmartHarvestPredictor builds a SmartHarvest controller factory
// running the selected predictor — the explicit-Controller counterpart
// to Scenario.Predictor for callers that compose the controller
// themselves (Scenario.Predictor and an explicit Controller are mutually
// exclusive; Run rejects the combination with ErrPredictorConflict).
func NewSmartHarvestPredictor(kind PredictorKind, opts SmartHarvestOptions) ControllerFactory {
	return harness.SmartHarvestPredictorFactory(kind, opts)
}

// ScenarioOption adjusts a Scenario at Run time (the caller's copy is
// never mutated).
type ScenarioOption = harness.ScenarioOption

// WithObserver attaches an Observer to the run.
func WithObserver(o Observer) ScenarioOption { return harness.WithObserver(o) }

// WithSeed overrides the scenario's RNG seed.
func WithSeed(seed uint64) ScenarioOption { return harness.WithSeed(seed) }

// WithPredictor selects the peak predictor for the default SmartHarvest
// controller (only valid when Scenario.Controller is nil).
func WithPredictor(p PredictorKind) ScenarioOption { return harness.WithPredictor(p) }

// WithDuration overrides the measured run length.
func WithDuration(d Time) ScenarioOption { return harness.WithDuration(d) }

// WithChecker attaches an invariant Checker to the run (see NewChecker);
// the verification Report lands in Result.Check.
func WithChecker(c *Checker) ScenarioOption { return harness.WithChecker(c) }

// Structured scenario-validation errors. Run returns a *ScenarioError
// wrapping one of these sentinels when the Scenario is malformed; test
// with errors.Is and recover detail with errors.As.
var (
	ErrNoPrimaries       = harness.ErrNoPrimaries
	ErrBadCoreCounts     = harness.ErrBadCoreCounts
	ErrBadDuration       = harness.ErrBadDuration
	ErrBadWindow         = harness.ErrBadWindow
	ErrBadChurn          = harness.ErrBadChurn
	ErrUnknownBatch      = harness.ErrUnknownBatch
	ErrUnknownPredictor  = harness.ErrUnknownPredictor
	ErrPredictorConflict = harness.ErrPredictorConflict
)

// ScenarioError reports which scenario and field failed validation.
type ScenarioError = harness.ScenarioError

// Run executes a scenario on the simulated machine and returns its
// results. Runs are deterministic given Scenario.Seed — with an observer
// attached, so is the event stream. Validation failures return a
// *ScenarioError wrapping one of the Err* sentinels.
func Run(s Scenario, opts ...ScenarioOption) (*Result, error) { return harness.Run(s, opts...) }

// RunOption configures RunAll.
type RunOption = harness.RunOption

// Parallelism bounds RunAll's worker pool; 0 or less means GOMAXPROCS.
func Parallelism(n int) RunOption { return harness.Parallelism(n) }

// RunAll executes scenarios concurrently on a bounded worker pool and
// returns results in input order. Each scenario is an independent
// simulation, so results are identical to running them serially; errors
// for individual scenarios are joined and reported together, with the
// corresponding result slots left nil.
func RunAll(scenarios []Scenario, opts ...RunOption) ([]*Result, error) {
	return harness.RunAll(scenarios, opts...)
}

// RunSpeedup runs the scenario twice — with its policy and with
// NoHarvest — and returns the batch job's completion-time speedup (the
// paper's Figure 6 metric).
func RunSpeedup(s Scenario) (speedup float64, with, baseline *Result, err error) {
	return harness.RunSpeedup(s)
}

// Policies.

// NewSmartHarvest builds the paper's online-learning policy.
func NewSmartHarvest(opts SmartHarvestOptions) ControllerFactory {
	return harness.SmartHarvestFactory(opts)
}

// NewFixedBuffer builds the PerfIso-style fixed idle buffer of k cores.
func NewFixedBuffer(k int) ControllerFactory { return harness.FixedBufferFactory(k) }

// NewPrevPeak builds the previous-peak heuristic over n windows;
// returnOne selects PrevPeak10's one-core-at-a-time safeguard response.
func NewPrevPeak(n int, returnOne bool) ControllerFactory {
	return harness.PrevPeakFactory(n, returnOne)
}

// NewNoHarvest builds the null policy (the latency baseline).
func NewNoHarvest() ControllerFactory { return harness.NoHarvestFactory() }

// NewEWMA builds the exponentially-weighted-moving-average baseline.
func NewEWMA(alpha float64, margin int) ControllerFactory {
	return harness.EWMAFactory(alpha, margin)
}

// Custom wraps a user-provided Controller constructor so it can be used
// as a Scenario.Controller.
func Custom(build func(primaryAlloc int) Controller) ControllerFactory {
	return func(alloc int) core.Controller { return build(alloc) }
}

// Workloads — the paper's §5.1 catalog, calibrated per DESIGN.md.

// Memcached models the in-memory key-value store at the given QPS.
func Memcached(qps float64) PrimarySpec { return apps.Memcached(qps) }

// MemcachedSwinging models a key-value store with sharp aperiodic load
// swings (the Figure 11 stress case).
func MemcachedSwinging(qps float64) PrimarySpec { return apps.MemcachedSwinging(qps) }

// IndexServe models the web-search index-serving node at the given QPS.
func IndexServe(qps float64) PrimarySpec { return apps.IndexServe(qps) }

// Moses models the TailBench machine-translation service.
func Moses(qps float64) PrimarySpec { return apps.Moses(qps) }

// ImgDNN models the TailBench handwriting-recognition service.
func ImgDNN(qps float64) PrimarySpec { return apps.ImgDNN(qps) }

// SquareWave models the Figure 7 synthetic square-wave primary.
func SquareWave(high, low int, halfPeriod Time) PrimarySpec {
	return apps.SquareWave(high, low, halfPeriod)
}

// MemcachedVaryingLoad models Table 2's stepped-load Memcached.
func MemcachedVaryingLoad(phaseQPS []float64, phaseLen Time) PrimarySpec {
	return apps.MemcachedVaryingLoad(phaseQPS, phaseLen)
}

// Observability — the typed event stream a run can emit (see
// Scenario.Observer / WithObserver). With no observer attached the hot
// path performs no allocation and no interface calls; with one attached,
// events arrive synchronously in deterministic order, so a trace is a
// pure function of the scenario and seed.

// Observer receives a run's typed events. Embed NopObserver and override
// the methods you care about.
type Observer = obs.Observer

// NopObserver implements Observer with no-ops, for embedding.
type NopObserver = obs.NopObserver

// Event types delivered to an Observer.
type (
	// PollSample is one busy-poll reading (every PollInterval).
	PollSample = obs.PollSample
	// WindowEnd is one learning-window decision: features, the raw
	// prediction, and the clamped target that was applied.
	WindowEnd = obs.WindowEnd
	// SafeguardTrip fires when the short-term safeguard cuts a window.
	SafeguardTrip = obs.SafeguardTrip
	// QoSTrip fires when the long-term safeguard pauses harvesting.
	QoSTrip = obs.QoSTrip
	// QoSResume fires once a harvest pause has expired.
	QoSResume = obs.QoSResume
	// Resize is one core-reassignment request with its latency.
	Resize = obs.Resize
	// ChurnApplied fires after a primary-VM arrival/departure.
	ChurnApplied = obs.ChurnApplied
	// BatchProgress fires at batch-job phase boundaries.
	BatchProgress = obs.BatchProgress
	// WindowFeatures are the per-window busy-sample statistics.
	WindowFeatures = obs.Features
	// FaultInjected fires when the fault-injection layer perturbs the run.
	FaultInjected = obs.FaultInjected
	// ResizeRetry fires when the agent re-attempts a failed hypercall.
	ResizeRetry = obs.ResizeRetry
	// DegradedEnter fires when the agent falls back to NoHarvest.
	DegradedEnter = obs.DegradedEnter
	// DegradedExit fires when a clean probation ends degraded mode.
	DegradedExit = obs.DegradedExit
	// PredictorInfo announces a non-default predictor selection at the
	// start of a run.
	PredictorInfo = obs.PredictorInfo
)

// ClampReason explains why a window's applied target differs from the
// controller's raw prediction.
type ClampReason = obs.ClampReason

// Clamp reasons carried by WindowEnd events.
const (
	ClampNone      = obs.ClampNone
	ClampPaused    = obs.ClampPaused
	ClampBusyFloor = obs.ClampBusyFloor
	ClampAllocCap  = obs.ClampAllocCap
	ClampDegraded  = obs.ClampDegraded
)

// Fault injection and resilience — the deterministic chaos layer (see
// internal/faults). A FaultPlan on Scenario.Faults perturbs the resize
// hypercall, the busy-core signal, and the agent itself, all driven by
// the scenario seed; the agent responds with bounded retries and, past
// the ResiliencePolicy thresholds, graceful degradation to NoHarvest.

// FaultPlan parameterizes fault injection for a run (Scenario.Faults).
// The zero value injects nothing and leaves the run byte-identical to a
// fault-free one.
type FaultPlan = faults.Plan

// ParseFaultPlan parses the -faults CLI syntax: comma-separated
// key=value pairs, e.g. "hfail=0.05,drop=0.01,stall=0.001,stalldur=60ms".
func ParseFaultPlan(s string) (FaultPlan, error) { return faults.ParsePlan(s) }

// PoolPlan is a harvested-capacity pool plan (Scenario.Pools; see
// internal/market). Pools are an economy over a fleet's shared harvest:
// a single-server Scenario has no fleet scheduler to run one, so any
// non-empty plan is rejected at Run rather than silently ignored — the
// plan belongs on the multi-server sched/market experiments.
type PoolPlan = market.Config

// ParsePools parses the -pools CLI syntax: semicolon-separated pool
// segments of comma-separated key=value pairs, e.g.
// "overcommit=1.5;name=acme,tier=standard,reserved=4,price=2". The
// empty string is the disabled plan.
func ParsePools(s string) (PoolPlan, error) { return market.ParsePools(s) }

// ResiliencePolicy tunes the agent's fault response: retry budget and
// backoff, degradation thresholds, and the probation for re-entry
// (Scenario.Resilience).
type ResiliencePolicy = core.ResiliencePolicy

// DefaultResilience returns the default fault-response policy.
func DefaultResilience() ResiliencePolicy { return core.DefaultResilience() }

// TraceSchemaVersion is the "v" field every JSONL trace line carries.
const TraceSchemaVersion = obs.SchemaVersion

// EventRing returns an in-memory flight recorder keeping the most recent
// capacity events.
func EventRing(capacity int) *obs.Ring { return obs.NewRing(capacity) }

// TraceWriter returns a streaming JSONL trace sink writing to w. Call
// Flush when the run is done. TraceOmitPolls drops poll samples, which
// dominate trace volume ~1000:1.
func TraceWriter(w io.Writer, opts ...obs.JSONLOption) *obs.JSONL { return obs.NewJSONL(w, opts...) }

// TraceOmitPolls configures TraceWriter to drop PollSample events.
func TraceOmitPolls() obs.JSONLOption { return obs.JSONLOmitPolls() }

// EventMetrics returns an aggregating sink that folds the event stream
// into counters and summary statistics.
func EventMetrics() *obs.Metrics { return obs.NewMetrics() }

// MultiObserver fans one event stream out to several observers.
func MultiObserver(observers ...Observer) Observer { return obs.Multi(observers...) }

// Verification — the invariant checker (see internal/check). A Checker is
// an Observer that validates a run online against the paper's safety
// contract: core conservation at every resize, monotonic sim time, the
// legality of both safeguards' state machines (including the exact
// harvest-pause duration), and prediction/clamp consistency at every
// window decision. Attach one per run with Scenario.Checker or
// WithChecker; the harness binds it and puts the Report in Result.Check.

// Checker verifies one run's event stream against the safety invariants.
type Checker = check.Checker

// CheckReport is the outcome of a checked run (Result.Check).
type CheckReport = check.Report

// CheckViolation is one invariant breach inside a CheckReport.
type CheckViolation = check.Violation

// TraceError is one well-formedness problem found by ValidateTrace.
type TraceError = check.TraceError

// NewChecker returns a fresh invariant checker for a single run.
func NewChecker() *Checker { return check.New() }

// ValidateTrace checks a JSONL trace (as written by TraceWriter) for
// well-formedness: schema version, known events, required fields with the
// right types, and non-decreasing timestamps.
func ValidateTrace(r io.Reader) ([]TraceError, error) { return check.ValidateTrace(r) }
