// Coverage and drift guards for the benchmark surface: every
// experiment must have a root Benchmark wrapper, and the perf
// snapshot's pinned microbenchmark list (internal/bench.Micros) must
// match what `go test -bench` actually discovers — a renamed or
// deleted benchmark fails here instead of silently dropping out of the
// BENCH_*.json trajectory.
package smartharvest_test

import (
	"os/exec"
	"sort"
	"strings"
	"testing"

	"smartharvest/internal/bench"
	"smartharvest/internal/experiments"
)

// experimentBenchmarks pairs every root Benchmark function with the
// experiment ID it runs. TestBenchmarkCoverage asserts this map covers
// experiments.All() exactly, and TestBenchmarkListMatchesDiscovery
// asserts the function names exist — so adding an experiment without a
// benchmark, or renaming a benchmark without updating the map, fails.
var experimentBenchmarks = map[string]string{
	"BenchmarkTable1":     "table1",
	"BenchmarkFig4":       "fig4",
	"BenchmarkFig5":       "fig5",
	"BenchmarkFig6":       "fig6",
	"BenchmarkTable2":     "table2",
	"BenchmarkFig7":       "fig7",
	"BenchmarkFig8":       "fig8",
	"BenchmarkFig9":       "fig9",
	"BenchmarkFig10":      "fig10",
	"BenchmarkFig11":      "fig11",
	"BenchmarkFig13":      "fig13",
	"BenchmarkFig14":      "fig14",
	"BenchmarkTable3":     "table3",
	"BenchmarkFig15":      "fig15",
	"BenchmarkAblations":  "ablation",
	"BenchmarkChurn":      "churn",
	"BenchmarkFleet":      "fleet",
	"BenchmarkSched":      "sched",
	"BenchmarkGuardSweep": "guard-sweep",
	"BenchmarkMemHarvest": "memharvest",
	"BenchmarkChaos":      "chaos",
	"BenchmarkFleetChaos": "fleetchaos",
	"BenchmarkPredictors": "predictors",
	"BenchmarkMarket":     "market",
}

// TestBenchmarkCoverage: the experiment registry and the root benchmark
// wrappers must cover each other exactly.
func TestBenchmarkCoverage(t *testing.T) {
	covered := map[string]string{} // experiment ID -> benchmark name
	for fn, id := range experimentBenchmarks {
		if prev, dup := covered[id]; dup {
			t.Errorf("experiment %q benchmarked twice (%s and %s)", id, prev, fn)
		}
		covered[id] = fn
	}
	for _, e := range experiments.All() {
		if _, ok := covered[e.ID]; !ok {
			t.Errorf("experiment %q has no root Benchmark wrapper", e.ID)
		}
		delete(covered, e.ID)
	}
	for id, fn := range covered {
		t.Errorf("%s benchmarks unknown experiment %q", fn, id)
	}
}

// listBenchmarks asks the go tool which Benchmark functions a package
// actually compiles — the ground truth the pinned lists must match.
func listBenchmarks(t *testing.T, pkg string) map[string]bool {
	t.Helper()
	out, err := exec.Command("go", "test", "-run", "^$", "-list", "^Benchmark", pkg).Output()
	if err != nil {
		t.Fatalf("go test -list %s: %v", pkg, err)
	}
	found := map[string]bool{}
	for _, line := range strings.Split(string(out), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "Benchmark") {
			found[line] = true
		}
	}
	return found
}

// TestBenchmarkListMatchesDiscovery compares the pinned lists against
// `go test -list` discovery: the root wrapper map byte-for-byte, and
// every snapshot micro's declared go-test twin.
func TestBenchmarkListMatchesDiscovery(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool; skipped in -short")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}

	root := listBenchmarks(t, ".")
	var wantRoot, gotRoot []string
	for fn := range experimentBenchmarks {
		wantRoot = append(wantRoot, fn)
	}
	for fn := range root {
		gotRoot = append(gotRoot, fn)
	}
	sort.Strings(wantRoot)
	sort.Strings(gotRoot)
	if strings.Join(wantRoot, ",") != strings.Join(gotRoot, ",") {
		t.Errorf("root benchmarks drifted:\n  pinned:     %v\n  discovered: %v", wantRoot, gotRoot)
	}

	byPkg := map[string][]bench.Micro{}
	for _, m := range bench.Micros() {
		byPkg[m.Pkg] = append(byPkg[m.Pkg], m)
	}
	pkgs := make([]string, 0, len(byPkg))
	for pkg := range byPkg {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		found := listBenchmarks(t, pkg)
		for _, m := range byPkg[pkg] {
			if !found[m.GoBench] {
				t.Errorf("snapshot micro %s declares twin %s in %s, but `go test -list` does not discover it",
					m.Name, m.GoBench, pkg)
			}
		}
	}
}
