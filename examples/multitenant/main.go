// Multitenant: two primary VMs with very different SLOs — a
// microsecond-scale Memcached and a millisecond-scale IndexServe — share
// one cpugroup, and SmartHarvest learns their aggregate usage pattern
// (the paper's §5.4 scenario). The example compares SmartHarvest against
// a few fixed buffers and shows why no single static buffer serves both
// tenants well.
//
// Run with:
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"

	"smartharvest"
)

func main() {
	primaries := []smartharvest.PrimarySpec{
		smartharvest.Memcached(40000),
		smartharvest.IndexServe(500),
	}
	run := func(name string, ctrl smartharvest.ControllerFactory) *smartharvest.Result {
		res, err := smartharvest.Run(smartharvest.Scenario{
			Name:              name,
			Primaries:         primaries,
			Controller:        ctrl,
			Duration:          30 * smartharvest.Second,
			Seed:              7,
			LongTermSafeguard: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := run("base", smartharvest.NewNoHarvest())
	fmt.Printf("%-16s %14s %14s %10s\n", "policy", "memcached P99", "indexserve P99", "harvested")
	show := func(res *smartharvest.Result) {
		fmt.Printf("%-16s %14v %14v %10.2f\n", res.Policy,
			smartharvest.Time(res.Primaries[0].Latency.P99),
			smartharvest.Time(res.Primaries[1].Latency.P99),
			res.AvgHarvestedCores)
	}
	show(base)
	show(run("sh", smartharvest.NewSmartHarvest(smartharvest.SmartHarvestOptions{})))
	for _, k := range []int{10, 8, 6} {
		show(run(fmt.Sprintf("fb%d", k), smartharvest.NewFixedBuffer(k)))
	}
	fmt.Println("\nSmall buffers harvest more but push the sub-millisecond tenant past")
	fmt.Println("its SLO; SmartHarvest adapts the buffer per window and backs off")
	fmt.Println("automatically when the aggregate pattern turns hostile.")
}
