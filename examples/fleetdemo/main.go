// Fleetdemo: run a small datacenter of independent SmartHarvest servers
// with tenant VMs arriving and departing, and compare how much batch
// capacity the fleet recovers with and without harvesting the
// allocated-but-idle cores of live tenants (the paper's motivation,
// scaled past a single server). This uses the internal cluster extension
// through the experiments surface; for programmatic access see
// internal/cluster.
//
// Run with:
//
//	go run ./examples/fleetdemo
package main

import (
	"fmt"
	"log"

	"smartharvest"
)

func main() {
	// A single-server slice of the fleet story, using the public API:
	// two tenants churn through one server while the ElasticVM soaks up
	// whatever is idle or unallocated.
	arrival := smartharvest.IndexServe(500)
	res, err := smartharvest.Run(smartharvest.Scenario{
		Name:      "fleet-slice",
		Primaries: []smartharvest.PrimarySpec{smartharvest.Memcached(40000)},
		Duration:  30 * smartharvest.Second,
		Seed:      21,
		Churn: []smartharvest.ChurnEvent{
			// An IndexServe tenant arrives at t=10s...
			{At: 10 * smartharvest.Second, Depart: -1, Arrive: &arrival},
			// ...and the original Memcached tenant departs at t=20s,
			// leaving its ten cores unallocated.
			{At: 20 * smartharvest.Second, Depart: 0},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("One server, tenants churning, ElasticVM harvesting:")
	for _, p := range res.Primaries {
		fmt.Printf("  tenant %-12s completed %8d requests, P99 %v\n",
			p.Name, p.Completed, smartharvest.Time(p.Latency.P99))
	}
	fmt.Printf("  average harvested: %.2f cores (both idle and unallocated)\n", res.AvgHarvestedCores)
	fmt.Printf("  batch executed %.1f core-seconds on a 1-core-minimum ElasticVM\n", res.ElasticCPUSeconds)
	fmt.Printf("  agent: %d resizes, %d safeguard saves, %d QoS trips\n",
		res.Resizes, res.Safeguards, res.QoSTrips)
	fmt.Println()
	fmt.Println("For the full multi-server fleet (placement, arrival streams, per-server")
	fmt.Println("stats), run: go run ./cmd/experiments fleet")
}
