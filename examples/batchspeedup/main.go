// Batchspeedup: run realistic batch jobs — an iterative ML-training job
// and a TeraSort-style phased job — on harvested cores next to a live
// IndexServe, and measure how much faster they finish than on the
// ElasticVM's guaranteed single core (the paper's Figure 6).
//
// Run with:
//
//	go run ./examples/batchspeedup
package main

import (
	"fmt"
	"log"

	"smartharvest"
)

func main() {
	for _, batch := range []smartharvest.BatchKind{
		smartharvest.BatchHDInsight,
		smartharvest.BatchTeraSort,
	} {
		s := smartharvest.Scenario{
			Name:      fmt.Sprintf("speedup-%v", batch),
			Primaries: []smartharvest.PrimarySpec{smartharvest.IndexServe(500)},
			Batch:     batch,
			Duration:  20 * smartharvest.Second,
			Seed:      11,
			Controller: smartharvest.NewSmartHarvest(
				smartharvest.SmartHarvestOptions{}),
		}
		speedup, with, baseline, err := smartharvest.RunSpeedup(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v: finished in %v on harvested cores vs %v on 1 core -> %.2fx speedup\n",
			batch, with.BatchTime, baseline.BatchTime, speedup)
		fmt.Printf("  IndexServe P99 meanwhile: %v (harvesting) vs %v (baseline)\n",
			smartharvest.Time(with.Primaries[0].Latency.P99),
			smartharvest.Time(baseline.Primaries[0].Latency.P99))
		fmt.Printf("  average harvested cores: %.2f\n\n", with.AvgHarvestedCores)
	}
}
