// Quickstart: harvest idle cores from a Memcached VM for a CPU-hungry
// batch consumer, and check the cost: how much CPU did the ElasticVM get,
// and what happened to Memcached's tail latency?
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"smartharvest"
)

func main() {
	// First, a baseline: no harvesting at all. The ElasticVM is pinned
	// to its 1-core minimum and Memcached keeps all ten of its cores.
	baseline, err := smartharvest.Run(smartharvest.Scenario{
		Name:       "quickstart-baseline",
		Primaries:  []smartharvest.PrimarySpec{smartharvest.Memcached(40000)},
		Controller: smartharvest.NewNoHarvest(),
		Duration:   30 * smartharvest.Second,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Now the same workload under SmartHarvest: the agent polls busy
	// cores every 50us, predicts the next 25ms window's peak demand with
	// an online cost-sensitive classifier, and lends the rest to the
	// ElasticVM.
	res, err := smartharvest.Run(smartharvest.Scenario{
		Name:      "quickstart",
		Primaries: []smartharvest.PrimarySpec{smartharvest.Memcached(40000)},
		Duration:  30 * smartharvest.Second,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}

	basePC, pc := baseline.Primaries[0], res.Primaries[0]
	fmt.Printf("Memcached P99: %v -> %v (%+.1f%%)\n",
		smartharvest.Time(basePC.Latency.P99), smartharvest.Time(pc.Latency.P99),
		(float64(pc.Latency.P99)/float64(basePC.Latency.P99)-1)*100)
	fmt.Printf("Cores harvested for the batch VM: %.2f on average\n", res.AvgHarvestedCores)
	fmt.Printf("Batch CPU executed: %.1f core-seconds (vs %.1f without harvesting)\n",
		res.ElasticCPUSeconds, baseline.ElasticCPUSeconds)
	fmt.Printf("Agent activity: %d learning windows, %d resizes, %d safeguard saves\n",
		res.Windows, res.Resizes, res.Safeguards)
}
