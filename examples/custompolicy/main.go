// Custompolicy: plug your own harvesting policy into the EVMAgent by
// implementing the Controller interface. This example builds a
// "quantile tracker": instead of learning a model it keeps a trailing
// window of observed peaks and allocates their 95th percentile plus one
// core — a middle ground between PrevPeak (too twitchy) and PrevPeak10
// (too sticky) — and races it against the paper's learner.
//
// Run with:
//
//	go run ./examples/custompolicy
package main

import (
	"fmt"
	"log"
	"sort"

	"smartharvest"
)

// quantileTracker allocates the q-quantile of the last n window peaks,
// plus a one-core guard band.
type quantileTracker struct {
	alloc int
	n     int
	q     float64
	peaks []int
}

func newQuantileTracker(alloc int) *quantileTracker {
	return &quantileTracker{alloc: alloc, n: 40, q: 0.95}
}

// Name implements smartharvest.Controller.
func (t *quantileTracker) Name() string { return "quantile-tracker" }

// Safeguards opts in to the agent's short-term safeguard.
func (t *quantileTracker) Safeguards() bool { return true }

// OnPoll implements smartharvest.Controller; this policy only acts at
// window boundaries.
func (t *quantileTracker) OnPoll(busy, currentTarget int) (int, bool) { return 0, false }

// OnWindowEnd implements smartharvest.Controller.
func (t *quantileTracker) OnWindowEnd(w smartharvest.Window) int {
	if w.Safeguard {
		// The observed peak is censored; fall back to the trailing
		// 1-second peak like the paper's conservative safeguard.
		if p := w.Peak1s + 1; p < t.alloc {
			return p
		}
		return t.alloc
	}
	t.peaks = append(t.peaks, w.Peak)
	if len(t.peaks) > t.n {
		t.peaks = t.peaks[len(t.peaks)-t.n:]
	}
	s := append([]int(nil), t.peaks...)
	sort.Ints(s)
	idx := int(t.q * float64(len(s)-1))
	target := s[idx] + 1
	if target > t.alloc {
		target = t.alloc
	}
	return target
}

func main() {
	primaries := []smartharvest.PrimarySpec{smartharvest.ImgDNN(2000)}
	run := func(name string, ctrl smartharvest.ControllerFactory) *smartharvest.Result {
		res, err := smartharvest.Run(smartharvest.Scenario{
			Name:       name,
			Primaries:  primaries,
			Controller: ctrl,
			Duration:   30 * smartharvest.Second,
			Seed:       3,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := run("base", smartharvest.NewNoHarvest())
	custom := run("custom", smartharvest.Custom(func(alloc int) smartharvest.Controller {
		return newQuantileTracker(alloc)
	}))
	paper := run("paper", smartharvest.NewSmartHarvest(smartharvest.SmartHarvestOptions{}))

	fmt.Printf("%-18s %12s %8s %10s\n", "policy", "img-dnn P99", "vs base", "harvested")
	show := func(res *smartharvest.Result) {
		fmt.Printf("%-18s %12v %+7.0f%% %10.2f\n", res.Policy,
			smartharvest.Time(res.Primaries[0].Latency.P99),
			(float64(res.Primaries[0].Latency.P99)/float64(base.Primaries[0].Latency.P99)-1)*100,
			res.AvgHarvestedCores)
	}
	show(base)
	show(custom)
	show(paper)
}
