module smartharvest

go 1.22
