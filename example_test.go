package smartharvest_test

import (
	"fmt"

	"smartharvest"
)

// ExampleRun shows the minimal harvesting experiment: one Memcached
// primary, the default SmartHarvest policy, a CPU-hungry batch consumer.
func ExampleRun() {
	res, err := smartharvest.Run(smartharvest.Scenario{
		Name:      "example",
		Primaries: []smartharvest.PrimarySpec{smartharvest.Memcached(40000)},
		Duration:  5 * smartharvest.Second,
		Warmup:    2 * smartharvest.Second,
		Seed:      42,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("policy: %s\n", res.Policy)
	fmt.Printf("served requests: %v\n", res.Primaries[0].Completed > 100000)
	fmt.Printf("harvested some cores: %v\n", res.AvgHarvestedCores > 0)
	// Output:
	// policy: smartharvest
	// served requests: true
	// harvested some cores: true
}

// ExampleCustom plugs a trivial user-defined policy into the agent: it
// always leaves half the allocation with the primaries.
func ExampleCustom() {
	half := smartharvest.Custom(func(alloc int) smartharvest.Controller {
		return halfPolicy{target: alloc / 2}
	})
	res, err := smartharvest.Run(smartharvest.Scenario{
		Name:       "custom-example",
		Primaries:  []smartharvest.PrimarySpec{smartharvest.Memcached(10000)},
		Controller: half,
		Duration:   3 * smartharvest.Second,
		Warmup:     smartharvest.Second,
		Seed:       1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("policy: %s\n", res.Policy)
	fmt.Printf("harvested about half: %v\n", res.AvgHarvestedCores > 4 && res.AvgHarvestedCores < 6)
	// Output:
	// policy: half
	// harvested about half: true
}

type halfPolicy struct{ target int }

func (h halfPolicy) Name() string                        { return "half" }
func (h halfPolicy) OnWindowEnd(smartharvest.Window) int { return h.target }
func (h halfPolicy) OnPoll(busy, cur int) (int, bool)    { return 0, false }
func (h halfPolicy) Safeguards() bool                    { return false }

// ExampleWithObserver attaches an aggregating observer to a run. The
// Metrics sink counts every event kind; a Ring or TraceWriter can be
// swapped in the same way for buffered records or a JSONL stream.
func ExampleWithObserver() {
	m := smartharvest.EventMetrics()
	res, err := smartharvest.Run(smartharvest.Scenario{
		Name:      "observed",
		Primaries: []smartharvest.PrimarySpec{smartharvest.Memcached(40000)},
		Duration:  5 * smartharvest.Second,
		Warmup:    smartharvest.Second,
		Seed:      42,
	}, smartharvest.WithObserver(m))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("window events match result: %v\n", m.Windows == res.Windows)
	fmt.Printf("saw poll samples: %v\n", m.Polls > 1000)
	fmt.Printf("resizes observed: %v\n", m.Resizes == res.Resizes)
	// Output:
	// window events match result: true
	// saw poll samples: true
	// resizes observed: true
}

// ExampleRunSpeedup measures how much faster a batch job finishes on
// harvested cores than on the ElasticVM's guaranteed minimum.
func ExampleRunSpeedup() {
	speedup, _, _, err := smartharvest.RunSpeedup(smartharvest.Scenario{
		Name:      "speedup-example",
		Primaries: []smartharvest.PrimarySpec{smartharvest.Memcached(20000)},
		Batch:     smartharvest.BatchHDInsight,
		Duration:  5 * smartharvest.Second,
		Warmup:    smartharvest.Second,
		Seed:      2,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("batch sped up: %v\n", speedup > 1.1)
	// Output:
	// batch sped up: true
}
