// Command benchstat-lite compares BENCH_*.json perf snapshots (written
// by `experiments -bench-snapshot`) and gates on regressions.
//
// Usage:
//
//	benchstat-lite [flags] BENCH_old.json [BENCH_newer.json ...]
//
// Snapshots are given oldest first. One snapshot prints its absolute
// numbers; two or more print an old-vs-new comparison table (first vs
// last) and textplot trend charts across the whole sequence. Output is
// deterministic: the same inputs always render the same bytes.
//
// Exit status: 0 clean, 1 when any metric regressed beyond -threshold
// (ns/op or allocs/op up, suite sim-s/wall-s down), 2 on usage or load
// errors. A benchmark missing from the newest snapshot (renamed or
// removed) is a warning, not a failure.
//
// Flags:
//
//	-threshold F  fractional regression that fails the gate
//	              (default 0.20 = 20%)
//	-q            print regressions and warnings only, not the tables
package main

import (
	"flag"
	"fmt"
	"os"

	"smartharvest/internal/bench"
)

func main() {
	threshold := flag.Float64("threshold", 0.20, "fractional regression that fails the gate (0.20 = 20%)")
	quiet := flag.Bool("q", false, "print regressions and warnings only")
	flag.Parse()

	paths := flag.Args()
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchstat-lite [-threshold F] BENCH_old.json [BENCH_newer.json ...]")
		os.Exit(2)
	}
	snaps := make([]*bench.Snapshot, len(paths))
	for i, p := range paths {
		s, err := bench.LoadSnapshot(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		snaps[i] = s
	}

	analysis, err := bench.Analyze(snaps, bench.AnalyzeOptions{Threshold: *threshold})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if !*quiet {
		fmt.Print(analysis.Output)
	} else {
		for _, w := range analysis.Warnings {
			fmt.Printf("warning: %s\n", w)
		}
		for _, r := range analysis.Regressions {
			fmt.Printf("REGRESSION: %s\n", r)
		}
	}
	if len(analysis.Regressions) > 0 {
		os.Exit(1)
	}
}
