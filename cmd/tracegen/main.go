// Command tracegen synthesizes bursty query-arrival traces (the
// repository's stand-in for the paper's Bing query traces) and writes
// them as "timestamp_ns batch" lines.
//
// Usage:
//
//	tracegen -qps 500 -span 30s -burst-fraction 0.1 -o trace.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"smartharvest/internal/sim"
	"smartharvest/internal/traces"
)

func main() {
	qps := flag.Float64("qps", 500, "average request rate")
	span := flag.Duration("span", 30*time.Second, "trace length")
	burstFraction := flag.Float64("burst-fraction", 0.1, "fraction of requests arriving in bursts")
	burstRate := flag.Float64("burst-rate", 20, "bursts per second")
	burstWidth := flag.Duration("burst-width", 6*time.Millisecond, "burst spread")
	wave := flag.Float64("load-wave", 0.3, "slow sinusoidal load modulation amplitude (0..1)")
	wavePeriod := flag.Duration("wave-period", 20*time.Second, "load modulation period")
	seed := flag.Uint64("seed", 1, "RNG seed")
	out := flag.String("o", "-", "output file, or - for stdout")
	flag.Parse()

	cfg := traces.Config{
		QPS:           *qps,
		Span:          sim.Duration(*span),
		BurstFraction: *burstFraction,
		BurstRate:     *burstRate,
		BurstWidth:    sim.Duration(*burstWidth),
		LoadWave:      *wave,
		WavePeriod:    sim.Duration(*wavePeriod),
		Seed:          *seed,
	}
	events, err := traces.Generate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "tracegen: close: %v\n", err)
				os.Exit(1)
			}
		}()
		w = f
	}
	if err := traces.Write(w, events); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d events over %v (%.1f qps)\n",
		len(events), *span, float64(len(events))/span.Seconds())
}
