// Command experiments regenerates the tables and figures of the
// SmartHarvest paper's evaluation on the simulated testbed.
//
// Usage:
//
//	experiments [flags] [experiment ...]
//
// With no arguments it runs every experiment in the paper's order. Each
// report prints to stdout; -out additionally writes one file per
// experiment.
//
// Scenarios within an experiment always run on harness.RunAll's worker
// pool, and when several experiments are requested the experiments
// themselves also run concurrently; reports stream to stdout in request
// order regardless. All output is byte-identical to a serial run
// (-parallel 1) with the same seed.
//
// Flags:
//
//	-duration  measured simulated time per run (default 30s)
//	-warmup    warmup before measurement (default 2s)
//	-seed      RNG seed (default 1)
//	-seeds     consecutive seeds per experiment (default 1)
//	-parallel  worker-pool size for scenarios and experiments
//	           (default 0 = GOMAXPROCS; 1 = fully serial)
//	-quick     shortcut for -duration 6s
//	-out DIR   also write <DIR>/<id>.txt
//	-trace DIR write one JSONL event trace per scenario into DIR
//	           (poll samples omitted; see internal/obs). Traces are
//	           byte-identical at any -parallel setting.
//	-check     attach the invariant checker (internal/check) to every
//	           scenario run; any violation fails its experiment with the
//	           checker's report, and a verification tally is printed
//	-faults    fault plan injected into the sched experiment's fleet
//	           (key=value pairs; see internal/faults.ParsePlan for the
//	           agent and fleet keys). Experiments that own their plans
//	           (chaos, fleetchaos) ignore it.
//	-predictor swap the peak predictor on every smartharvest scenario
//	           (csoaa, adagrad, ewma, periodic, mlp, ensemble); the
//	           predictors experiment ignores this and always sweeps all
//	-pools     harvested-capacity pool plan (internal/market grammar) for
//	           the sched and market experiments: sched opens it on every
//	           run's fleet, market runs it in place of its built-in
//	           overcommit × tier-mix grid; other experiments ignore it
//	-tenants   tenant workload-characterization class (flat, periodic,
//	           bursty, mixed) replacing the sched/market fleets' default
//	           tenant mix; other experiments ignore it
//	-list      list experiment IDs and exit
//
// Grid mode (declarative experiment plans; see internal/bench):
//
//	-grid FILE     run the JSON experiment grid instead of positional
//	               experiments, honoring -parallel; per-run artifacts
//	               (<id>.csv, <id>.json, <id>.txt, manifest.csv) are
//	               byte-identical at any -parallel setting
//	-grid-out DIR  artifact directory for -grid (default grid-out)
//
// Snapshot mode (perf trajectory; see internal/bench and DESIGN.md §11):
//
//	-bench-snapshot   measure the pinned microbenchmarks plus one timed
//	                  run of the whole suite and write a BENCH_*.json
//	                  snapshot; compare snapshots with benchstat-lite
//	-bench-out FILE   snapshot path (default BENCH.json)
//	-bench-label S    snapshot label (default the -bench-out stem)
//	-bench-short      reduced measurement budget for CI smoke runs
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"smartharvest/internal/bench"
	"smartharvest/internal/experiments"
	"smartharvest/internal/faults"
	"smartharvest/internal/harness"
	"smartharvest/internal/market"
	"smartharvest/internal/sim"
	"smartharvest/internal/workload"
)

// jobOutput is everything one experiment (all its seeds) produced.
type jobOutput struct {
	id       string
	stdout   strings.Builder // report text + per-seed wall times
	combined []byte          // what -out writes
	errs     []error
	wall     time.Duration
}

func main() {
	duration := flag.Duration("duration", 30*time.Second, "measured simulated time per run")
	warmup := flag.Duration("warmup", 2*time.Second, "simulated warmup before measurement")
	seed := flag.Uint64("seed", 1, "RNG seed")
	seeds := flag.Int("seeds", 1, "number of consecutive seeds to run each experiment with (the paper averages 3 runs)")
	parallel := flag.Int("parallel", 0, "scenario/experiment worker-pool size (0 = GOMAXPROCS, 1 = serial)")
	quick := flag.Bool("quick", false, "short runs (6s simulated)")
	outDir := flag.String("out", "", "directory to also write per-experiment reports to")
	traceDir := flag.String("trace", "", "directory to write per-scenario JSONL event traces to")
	checkRuns := flag.Bool("check", false, "verify safety invariants on every scenario run (fails the experiment on violation)")
	faultsPlan := flag.String("faults", "", "fault plan for the sched experiment's fleet (key=value pairs; agent keys: hfail, hdelay, drop, stale, noise, stall, crash; fleet keys: scrash, gdrop, gdelay, rstale, rloss, srestartdur, gdelaydur; e.g. 'drop=0.01,scrash=0.002')")
	predictor := flag.String("predictor", "", "peak predictor for every smartharvest row: csoaa (default), adagrad, ewma, periodic, mlp, ensemble")
	poolSpec := flag.String("pools", "", "harvested-capacity pool plan for the sched and market experiments, e.g. 'overcommit=1.5;name=acme,tier=standard,reserved=4,price=2' (see internal/market; market runs it in place of its overcommit x tier-mix grid)")
	tenantMix := flag.String("tenants", "", "tenant workload-characterization class for the sched and market experiments: flat, periodic, bursty, mixed (default: the four-primaries mix)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	gridFile := flag.String("grid", "", "run the declarative JSON experiment grid in FILE (see internal/bench)")
	gridOut := flag.String("grid-out", "grid-out", "artifact directory for -grid runs")
	benchSnapshot := flag.Bool("bench-snapshot", false, "collect a perf snapshot (pinned microbenchmarks + suite timing) and exit")
	benchOut := flag.String("bench-out", "BENCH.json", "snapshot output path for -bench-snapshot")
	benchLabel := flag.String("bench-label", "", "snapshot label (default: -bench-out file stem)")
	benchShort := flag.Bool("bench-short", false, "reduced snapshot measurement budget (CI smoke)")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return
	}
	if *benchSnapshot {
		os.Exit(runBenchSnapshot(*benchOut, *benchLabel, *benchShort, *parallel))
	}
	if *gridFile != "" {
		os.Exit(runGrid(*gridFile, *gridOut, *parallel))
	}

	cfg := experiments.Config{
		Duration: sim.Duration(*duration),
		Warmup:   sim.Duration(*warmup),
		Seed:     *seed,
		Parallel: *parallel,
		TraceDir: *traceDir,
		Check:    *checkRuns,
	}
	if *quick {
		cfg.Duration = 6 * sim.Second
	}
	if *faultsPlan != "" {
		plan, err := faults.ParsePlan(*faultsPlan)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Faults = plan
	}
	if *predictor != "" {
		kind, err := harness.ParsePredictor(*predictor)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Predictor = kind
	}
	if *poolSpec != "" {
		if _, err := market.ParsePools(*poolSpec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Pools = *poolSpec
	}
	if *tenantMix != "" {
		if _, err := workload.ParseClass(*tenantMix); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.TenantMix = *tenantMix
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}

	ids := flag.Args()
	if len(ids) == 0 {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}

	if *seeds < 1 {
		*seeds = 1
	}

	workers := *parallel
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = min(workers, len(ids))

	simStart := harness.SimTimeExecuted()
	wallStart := time.Now()

	// Run experiments on a bounded pool; stream reports in request order.
	ready := make([]chan *jobOutput, len(ids))
	for i := range ready {
		ready[i] = make(chan *jobOutput, 1)
	}
	next := make(chan int, len(ids))
	for i := range ids {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		go func() {
			for i := range next {
				ready[i] <- runExperiment(ids[i], cfg, *seeds)
			}
		}()
	}

	exitCode := 0
	outputs := make([]*jobOutput, len(ids))
	for i := range ids {
		out := <-ready[i]
		outputs[i] = out
		fmt.Print(out.stdout.String())
		for _, err := range out.errs {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", out.id, err)
			exitCode = 1
		}
		if *outDir != "" && len(out.combined) > 0 {
			path := filepath.Join(*outDir, out.id+".txt")
			if err := os.WriteFile(path, out.combined, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", path, err)
				exitCode = 1
			}
		}
	}

	if len(ids) > 1 {
		printSummary(outputs, time.Since(wallStart), harness.SimTimeExecuted()-simStart, workers)
	}
	if *checkRuns {
		runs, violations := experiments.CheckStats()
		fmt.Printf("invariant checks: %d scenario runs verified, %d violations\n", runs, violations)
		if violations > 0 {
			exitCode = 1
		}
	}
	os.Exit(exitCode)
}

// runBenchSnapshot collects a perf snapshot (internal/bench) and writes
// it to path, printing its absolute numbers afterwards.
func runBenchSnapshot(path, label string, short bool, parallel int) int {
	if label == "" {
		label = strings.TrimSuffix(filepath.Base(path), ".json")
		label = strings.TrimPrefix(label, "BENCH_")
	}
	snap, err := bench.Collect(bench.CollectConfig{
		Label:    label,
		Short:    short,
		Parallel: parallel,
		Progress: func(line string) { fmt.Println(line) },
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 1
	}
	if err := bench.WriteSnapshot(path, snap); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s\n", path)
	return 0
}

// runGrid executes a declarative experiment grid and writes per-run
// artifacts, streaming each run's human report to stdout in order.
func runGrid(gridPath, outDir string, parallel int) int {
	grid, err := bench.LoadGrid(gridPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 2
	}
	results, err := bench.RunGrid(grid, parallel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 2
	}
	code := 0
	for _, rr := range results {
		if rr.Err != nil {
			fmt.Fprintf(os.Stderr, "experiments: grid run %s: %v\n", rr.ID, rr.Err)
			code = 1
			continue
		}
		fmt.Printf("[%s]\n%s\n", rr.ID, rr.Report)
	}
	if err := bench.WriteArtifacts(outDir, results); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %d artifact files to %s\n", 1+3*countOK(results), outDir)
	return code
}

func countOK(results []bench.RunResult) int {
	n := 0
	for _, rr := range results {
		if rr.Err == nil {
			n++
		}
	}
	return n
}

// runExperiment executes one experiment across its seeds and collects
// everything it printed, so concurrent experiments do not interleave.
func runExperiment(id string, cfg experiments.Config, seeds int) *jobOutput {
	out := &jobOutput{id: id}
	start := time.Now()
	defer func() { out.wall = time.Since(start) }()

	run, ok := experiments.Lookup(id)
	if !ok {
		out.errs = append(out.errs, fmt.Errorf("unknown experiment %q (use -list)", id))
		return out
	}
	for rep := 0; rep < seeds; rep++ {
		runCfg := cfg
		runCfg.Seed = cfg.Seed + uint64(rep)
		repStart := time.Now()
		report, err := run(runCfg)
		if err != nil {
			out.errs = append(out.errs, err)
			continue
		}
		if seeds > 1 {
			fmt.Fprintf(&out.stdout, "[seed %d]\n", runCfg.Seed)
			out.combined = append(out.combined, fmt.Sprintf("[seed %d]\n", runCfg.Seed)...)
		}
		out.stdout.WriteString(report.String())
		fmt.Fprintf(&out.stdout, "(%s wall time)\n\n", time.Since(repStart).Round(10*time.Millisecond))
		out.combined = append(out.combined, report.String()...)
	}
	return out
}

// printSummary reports per-experiment wall time and the aggregate
// simulation throughput, so parallel speedups are visible without
// running benchmarks. Note that per-experiment wall times overlap when
// experiments run concurrently, so they sum to more than the total.
func printSummary(outputs []*jobOutput, wall time.Duration, simTime sim.Time, workers int) {
	fmt.Printf("== summary (%d workers) ==\n", workers)
	for _, out := range outputs {
		status := ""
		if len(out.errs) > 0 {
			status = "  FAILED"
		}
		fmt.Printf("%-12s %8s%s\n", out.id, out.wall.Round(10*time.Millisecond), status)
	}
	simSec := simTime.Seconds()
	wallSec := wall.Seconds()
	rate := 0.0
	if wallSec > 0 {
		rate = simSec / wallSec
	}
	fmt.Printf("total: %d experiments in %s wall; %.0f sim-s executed (%.1f sim-s/wall-s)\n",
		len(outputs), wall.Round(10*time.Millisecond), simSec, rate)
}
