// Command experiments regenerates the tables and figures of the
// SmartHarvest paper's evaluation on the simulated testbed.
//
// Usage:
//
//	experiments [flags] [experiment ...]
//
// With no arguments it runs every experiment in the paper's order. Each
// report prints to stdout; -out additionally writes one file per
// experiment.
//
// Flags:
//
//	-duration  measured simulated time per run (default 30s)
//	-warmup    warmup before measurement (default 2s)
//	-seed      RNG seed (default 1)
//	-quick     shortcut for -duration 6s
//	-out DIR   also write <DIR>/<id>.txt
//	-list      list experiment IDs and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"smartharvest/internal/experiments"
	"smartharvest/internal/sim"
)

func main() {
	duration := flag.Duration("duration", 30*time.Second, "measured simulated time per run")
	warmup := flag.Duration("warmup", 2*time.Second, "simulated warmup before measurement")
	seed := flag.Uint64("seed", 1, "RNG seed")
	seeds := flag.Int("seeds", 1, "number of consecutive seeds to run each experiment with (the paper averages 3 runs)")
	quick := flag.Bool("quick", false, "short runs (6s simulated)")
	outDir := flag.String("out", "", "directory to also write per-experiment reports to")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return
	}

	cfg := experiments.Config{
		Duration: sim.Duration(*duration),
		Warmup:   sim.Duration(*warmup),
		Seed:     *seed,
	}
	if *quick {
		cfg.Duration = 6 * sim.Second
	}

	ids := flag.Args()
	if len(ids) == 0 {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}

	if *seeds < 1 {
		*seeds = 1
	}
	exitCode := 0
	for _, id := range ids {
		run, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", id)
			exitCode = 1
			continue
		}
		var combined []byte
		for rep := 0; rep < *seeds; rep++ {
			runCfg := cfg
			runCfg.Seed = cfg.Seed + uint64(rep)
			start := time.Now()
			report, err := run(runCfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
				exitCode = 1
				continue
			}
			if *seeds > 1 {
				fmt.Printf("[seed %d]\n", runCfg.Seed)
				combined = append(combined, fmt.Sprintf("[seed %d]\n", runCfg.Seed)...)
			}
			fmt.Print(report)
			fmt.Printf("(%s wall time)\n\n", time.Since(start).Round(10*time.Millisecond))
			combined = append(combined, report.String()...)
		}
		if *outDir != "" && len(combined) > 0 {
			path := filepath.Join(*outDir, id+".txt")
			if err := os.WriteFile(path, combined, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", path, err)
				exitCode = 1
			}
		}
	}
	os.Exit(exitCode)
}
