package main

import (
	"testing"

	"smartharvest/internal/faults"
)

// TestFaultsFlagRoundTrip pins the -faults flag syntax this command
// feeds into experiments.Config.Faults: agent keys, fleet keys, and
// mixed plans must survive parse → String → parse unchanged.
func TestFaultsFlagRoundTrip(t *testing.T) {
	empty, err := faults.ParsePlan("")
	if err != nil {
		t.Fatalf("ParsePlan(\"\"): %v", err)
	}
	if empty != (faults.Plan{}) || empty.String() != "none" {
		t.Errorf("empty spec parsed to %+v (%q), want the zero plan rendered as \"none\"", empty, empty)
	}
	cases := []string{
		"drop=0.01,stall=0.001",
		"hfail=0.05,hdelay=0.02,hdelaymean=2ms,hdelayp99=10ms",
		"scrash=0.002",
		"scrash=0.004,srestartdur=400ms",
		"gdrop=0.2,gdelay=0.1,gdelaydur=10ms",
		"rstale=0.1,rloss=0.05",
		"drop=0.01,scrash=0.002,gdrop=0.2,rstale=0.1,rloss=0.05",
	}
	for _, in := range cases {
		plan, err := faults.ParsePlan(in)
		if err != nil {
			t.Errorf("ParsePlan(%q): %v", in, err)
			continue
		}
		again, err := faults.ParsePlan(plan.String())
		if err != nil {
			t.Errorf("ParsePlan(%q).String() = %q does not reparse: %v", in, plan.String(), err)
			continue
		}
		if again != plan {
			t.Errorf("ParsePlan(%q) round-trip changed the plan:\n first %+v\nsecond %+v", in, plan, again)
		}
	}
}

// TestFaultsFlagRejectsGarbage pins that a mistyped -faults value exits
// with a parse error instead of running with a silently empty plan.
func TestFaultsFlagRejectsGarbage(t *testing.T) {
	cases := []string{
		"bogus=0.1",      // unknown key
		"scrash 0.1",     // missing '='
		"gdrop=",         // empty value
		"gdrop=high",     // not a number
		"rstale=-0.5",    // negative probability
		"scrash=1.01",    // probability above 1
		"srestartdur=10", // duration without a unit
		"gdelaydur=-5ms", // negative duration
		"gdrop=0.1,",     // trailing empty pair
	}
	for _, in := range cases {
		if _, err := faults.ParsePlan(in); err == nil {
			t.Errorf("ParsePlan(%q) accepted garbage", in)
		}
	}
}
