package main

import (
	"testing"

	"smartharvest/internal/faults"
	"smartharvest/internal/market"
	"smartharvest/internal/workload"
)

// TestFaultsFlagRoundTrip pins the -faults flag syntax this command
// feeds into experiments.Config.Faults: agent keys, fleet keys, and
// mixed plans must survive parse → String → parse unchanged.
func TestFaultsFlagRoundTrip(t *testing.T) {
	empty, err := faults.ParsePlan("")
	if err != nil {
		t.Fatalf("ParsePlan(\"\"): %v", err)
	}
	if empty != (faults.Plan{}) || empty.String() != "none" {
		t.Errorf("empty spec parsed to %+v (%q), want the zero plan rendered as \"none\"", empty, empty)
	}
	cases := []string{
		"drop=0.01,stall=0.001",
		"hfail=0.05,hdelay=0.02,hdelaymean=2ms,hdelayp99=10ms",
		"scrash=0.002",
		"scrash=0.004,srestartdur=400ms",
		"gdrop=0.2,gdelay=0.1,gdelaydur=10ms",
		"rstale=0.1,rloss=0.05",
		"drop=0.01,scrash=0.002,gdrop=0.2,rstale=0.1,rloss=0.05",
	}
	for _, in := range cases {
		plan, err := faults.ParsePlan(in)
		if err != nil {
			t.Errorf("ParsePlan(%q): %v", in, err)
			continue
		}
		again, err := faults.ParsePlan(plan.String())
		if err != nil {
			t.Errorf("ParsePlan(%q).String() = %q does not reparse: %v", in, plan.String(), err)
			continue
		}
		if again != plan {
			t.Errorf("ParsePlan(%q) round-trip changed the plan:\n first %+v\nsecond %+v", in, plan, again)
		}
	}
}

// TestFaultsFlagRejectsGarbage pins that a mistyped -faults value exits
// with a parse error instead of running with a silently empty plan.
func TestFaultsFlagRejectsGarbage(t *testing.T) {
	cases := []string{
		"bogus=0.1",      // unknown key
		"scrash 0.1",     // missing '='
		"gdrop=",         // empty value
		"gdrop=high",     // not a number
		"rstale=-0.5",    // negative probability
		"scrash=1.01",    // probability above 1
		"srestartdur=10", // duration without a unit
		"gdelaydur=-5ms", // negative duration
		"gdrop=0.1,",     // trailing empty pair
	}
	for _, in := range cases {
		if _, err := faults.ParsePlan(in); err == nil {
			t.Errorf("ParsePlan(%q) accepted garbage", in)
		}
	}
}

// TestPoolsFlagRoundTrip pins the -pools flag syntax this command feeds
// into experiments.Config.Pools: every plan a user can type must
// survive parse → String → parse with an identical canonical rendering.
func TestPoolsFlagRoundTrip(t *testing.T) {
	empty, err := market.ParsePools("")
	if err != nil {
		t.Fatalf("ParsePools(\"\"): %v", err)
	}
	if empty.Enabled() || empty.String() != "none" {
		t.Errorf("empty spec parsed to %q (enabled=%v), want the disabled plan rendered as \"none\"", empty, empty.Enabled())
	}
	cases := []string{
		"name=acme,tier=spot,reserved=4",
		"overcommit=1.5;name=acme,tier=standard,reserved=4,price=2",
		"name=a,tier=spot,reserved=2;name=b,tier=premium,reserved=1,size=90s,at=3s",
		"overcommit=2", // overcommit without pools: valid, still disabled
		"name=big,tier=standard,reserved=16,size=10m,price=0.5,at=1.5s",
	}
	for _, in := range cases {
		plan, err := market.ParsePools(in)
		if err != nil {
			t.Errorf("ParsePools(%q): %v", in, err)
			continue
		}
		again, err := market.ParsePools(plan.String())
		if err != nil {
			t.Errorf("ParsePools(%q).String() = %q does not reparse: %v", in, plan.String(), err)
			continue
		}
		if again.String() != plan.String() {
			t.Errorf("ParsePools(%q) round-trip changed the plan:\n first %q\nsecond %q", in, plan, again)
		}
	}
}

// TestPoolsFlagRejectsGarbage pins that a mistyped -pools value exits
// with a parse error instead of running with a silently empty plan.
func TestPoolsFlagRejectsGarbage(t *testing.T) {
	cases := []string{
		"bogus=1",                            // unknown key
		"name=a",                             // pool without tier/reserved
		"name=,tier=spot,reserved=1",         // empty name
		"name=a,tier=gold,reserved=1",        // unknown tier
		"name=a,tier=spot,reserved=0",        // non-positive reservation
		"name=a,tier=spot reserved=2",        // missing '='
		"name=a,tier=spot,reserved=1,size=5", // duration without a unit
		"name=a,tier=spot,reserved=1,at=-1s", // negative time
		"overcommit=nope",                    // not a number
		"overcommit=-1",                      // negative overcommit
		"name=a,tier=spot,reserved=1;name=a,tier=spot,reserved=1", // duplicate name
	}
	for _, in := range cases {
		if _, err := market.ParsePools(in); err == nil {
			t.Errorf("ParsePools(%q) accepted garbage", in)
		}
	}
}

// TestTenantsFlag pins the -tenants vocabulary this command feeds into
// experiments.Config.TenantMix: the four characterization classes parse
// and round-trip through String, everything else is rejected eagerly.
func TestTenantsFlag(t *testing.T) {
	for _, in := range []string{"flat", "periodic", "bursty", "mixed"} {
		class, err := workload.ParseClass(in)
		if err != nil {
			t.Errorf("ParseClass(%q): %v", in, err)
			continue
		}
		if class.String() != in {
			t.Errorf("ParseClass(%q).String() = %q", in, class.String())
		}
	}
	for _, in := range []string{"", "diurnal", "FLAT", "bursty,flat", "random"} {
		if _, err := workload.ParseClass(in); err == nil {
			t.Errorf("ParseClass(%q) accepted garbage", in)
		}
	}
}
