// Command hostagent runs the SmartHarvest EVMAgent against a real Linux
// host using cpuset cgroups (v2): it harvests cores from a "primary"
// cgroup of latency-critical processes for an "elastic" cgroup of batch
// processes, with the same online learner and safeguards the simulator
// uses.
//
// Setup (as root, cgroup v2):
//
//	mkdir /sys/fs/cgroup/primary /sys/fs/cgroup/elastic
//	echo "+cpuset" > /sys/fs/cgroup/cgroup.subtree_control
//	echo <primary pids> > /sys/fs/cgroup/primary/cgroup.procs
//	echo <batch pids>   > /sys/fs/cgroup/elastic/cgroup.procs
//	hostagent -primary-cgroup /sys/fs/cgroup/primary \
//	          -elastic-cgroup /sys/fs/cgroup/elastic \
//	          -cores 0-7 -policy smartharvest
//
// This is the best-effort host port of the paper's Hyper-V agent; see
// internal/hostcg for the signal mapping and its limitations.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"smartharvest/internal/core"
	"smartharvest/internal/hostcg"
	"smartharvest/internal/rtagent"
)

// parseCores expands "0-3,6,8-9" into a core list.
func parseCores(spec string) ([]int, error) {
	var cores []int
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err1 := strconv.Atoi(lo)
			b, err2 := strconv.Atoi(hi)
			if err1 != nil || err2 != nil || b < a {
				return nil, fmt.Errorf("bad core range %q", part)
			}
			for c := a; c <= b; c++ {
				cores = append(cores, c)
			}
			continue
		}
		c, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad core id %q", part)
		}
		cores = append(cores, c)
	}
	if len(cores) == 0 {
		return nil, fmt.Errorf("empty core list")
	}
	return cores, nil
}

func buildController(policy string, alloc int) (core.Controller, error) {
	name, arg, _ := strings.Cut(policy, ":")
	n := 0
	if arg != "" {
		v, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("bad policy argument %q", arg)
		}
		n = v
	}
	switch name {
	case "smartharvest":
		return core.NewSmartHarvest(alloc, core.SmartHarvestOptions{}), nil
	case "fixedbuffer":
		if n == 0 {
			n = 2
		}
		return core.NewFixedBuffer(alloc, n), nil
	case "prevpeak":
		if n == 0 {
			n = 1
		}
		return core.NewPrevPeak(alloc, n, n > 1), nil
	case "noharvest":
		return core.NewNoHarvest(alloc), nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

func main() {
	primaryCg := flag.String("primary-cgroup", "", "cgroup v2 directory of the primary (latency-critical) processes")
	elasticCg := flag.String("elastic-cgroup", "", "cgroup v2 directory of the elastic (batch) processes")
	coreSpec := flag.String("cores", "", "harvesting core pool, e.g. 0-7 or 0,2,4-6")
	policy := flag.String("policy", "smartharvest", "smartharvest, fixedbuffer[:k], prevpeak[:n], noharvest")
	window := flag.Duration("window", 25*time.Millisecond, "learning window")
	poll := flag.Duration("poll", time.Millisecond, "busy-core polling interval")
	guard := flag.Bool("long-term-safeguard", true, "enable the QoS guard")
	statsEvery := flag.Duration("stats", 10*time.Second, "stats reporting interval")
	modelFile := flag.String("model-file", "", "persist the learner's weights here across restarts (smartharvest policy only)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "hostagent: %v\n", err)
		os.Exit(1)
	}
	cores, err := parseCores(*coreSpec)
	if err != nil {
		fail(err)
	}
	backend, err := hostcg.New(hostcg.Config{
		PrimaryCgroup: *primaryCg,
		ElasticCgroup: *elasticCg,
		Cores:         cores,
	})
	if err != nil {
		fail(err)
	}
	if err := backend.Init(); err != nil {
		fail(err)
	}
	alloc := len(cores) - 1 // the elastic group keeps one core minimum
	ctrl, err := buildController(*policy, alloc)
	if err != nil {
		fail(err)
	}
	sh, _ := ctrl.(*core.SmartHarvest)
	if *modelFile != "" && sh == nil {
		fail(fmt.Errorf("-model-file requires the smartharvest policy"))
	}
	if *modelFile != "" {
		if f, err := os.Open(*modelFile); err == nil {
			loadErr := sh.LoadModel(f)
			f.Close()
			if loadErr != nil {
				fail(fmt.Errorf("loading %s: %w", *modelFile, loadErr))
			}
			fmt.Printf("hostagent: resumed learner state from %s\n", *modelFile)
		}
	}
	saveModel := func() {
		if *modelFile == "" || sh == nil {
			return
		}
		f, err := os.CreateTemp(filepath.Dir(*modelFile), ".model-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "hostagent: saving model: %v\n", err)
			return
		}
		saveErr := sh.SaveModel(f)
		if err := f.Close(); saveErr == nil {
			saveErr = err
		}
		if saveErr == nil {
			saveErr = os.Rename(f.Name(), *modelFile)
		}
		if saveErr != nil {
			os.Remove(f.Name())
			fmt.Fprintf(os.Stderr, "hostagent: saving model: %v\n", saveErr)
		}
	}
	agent, err := rtagent.New(backend, ctrl, rtagent.Config{
		PrimaryAlloc:      alloc,
		ElasticMin:        1,
		Window:            *window,
		PollInterval:      *poll,
		LongTermSafeguard: *guard,
	})
	if err != nil {
		fail(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		t := time.NewTicker(*statsEvery)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				st := agent.Stats()
				fmt.Printf("hostagent: target=%d windows=%d resizes=%d safeguards=%d qos-trips=%d\n",
					st.Target, st.Windows, st.Resizes, st.Safeguards, st.QoSTrips)
				if err := backend.LastError(); err != nil {
					fmt.Fprintf(os.Stderr, "hostagent: backend: %v\n", err)
				}
			}
		}
	}()

	fmt.Printf("hostagent: harvesting %d cores (%s) with %s; ctrl-C to stop\n",
		len(cores), *coreSpec, ctrl.Name())
	if err := agent.Run(ctx); err != nil {
		fail(err)
	}
	// Give everything back on exit and persist what was learned.
	backend.SetPrimaryCores(len(cores) - 1)
	saveModel()
	fmt.Println("hostagent: stopped; cores returned to the primary cgroup")
}
