package main

import "testing"

func TestParseCores(t *testing.T) {
	cases := []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{"0-3", []int{0, 1, 2, 3}, false},
		{"0,2,4", []int{0, 2, 4}, false},
		{"0-1, 4-5", []int{0, 1, 4, 5}, false},
		{"7", []int{7}, false},
		{"", nil, true},
		{"a-b", nil, true},
		{"3-1", nil, true},
		{"x", nil, true},
	}
	for _, c := range cases {
		got, err := parseCores(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseCores(%q) accepted", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseCores(%q): %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseCores(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseCores(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}

func TestBuildController(t *testing.T) {
	for in, want := range map[string]string{
		"smartharvest":  "smartharvest",
		"fixedbuffer:3": "fixedbuffer-3",
		"prevpeak:10":   "prevpeak10",
		"noharvest":     "noharvest",
	} {
		c, err := buildController(in, 10)
		if err != nil {
			t.Errorf("buildController(%q): %v", in, err)
			continue
		}
		if c.Name() != want {
			t.Errorf("buildController(%q) -> %q, want %q", in, c.Name(), want)
		}
	}
	for _, bad := range []string{"nope", "fixedbuffer:z"} {
		if _, err := buildController(bad, 10); err == nil {
			t.Errorf("buildController(%q) accepted", bad)
		}
	}
}
