// Command smartharvest runs a single harvesting scenario on the simulated
// testbed and prints its results: per-primary latency percentiles,
// harvested cores, safeguard activity, and reassignment latencies.
//
// Usage examples:
//
//	smartharvest -primary memcached:40000 -policy smartharvest -duration 30s
//	smartharvest -primary memcached:40000 -primary indexserve:500 -policy fixedbuffer:6
//	smartharvest -primary indexserve:500 -batch hdinsight -mechanism ipis -speedup
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"smartharvest"
	"smartharvest/internal/sim"
)

// primaryList collects repeated -primary flags.
type primaryList []string

func (p *primaryList) String() string { return strings.Join(*p, ",") }
func (p *primaryList) Set(v string) error {
	*p = append(*p, v)
	return nil
}

func parsePrimary(spec string) (smartharvest.PrimarySpec, error) {
	name, arg, _ := strings.Cut(spec, ":")
	qps := 0.0
	if arg != "" {
		v, err := strconv.ParseFloat(arg, 64)
		if err != nil {
			return smartharvest.PrimarySpec{}, fmt.Errorf("bad load %q: %v", arg, err)
		}
		qps = v
	}
	switch name {
	case "memcached":
		if qps == 0 {
			qps = 40000
		}
		return smartharvest.Memcached(qps), nil
	case "memcached-swing":
		if qps == 0 {
			qps = 60000
		}
		return smartharvest.MemcachedSwinging(qps), nil
	case "indexserve":
		if qps == 0 {
			qps = 500
		}
		return smartharvest.IndexServe(qps), nil
	case "moses":
		if qps == 0 {
			qps = 400
		}
		return smartharvest.Moses(qps), nil
	case "img-dnn":
		if qps == 0 {
			qps = 2000
		}
		return smartharvest.ImgDNN(qps), nil
	case "squarewave":
		return smartharvest.SquareWave(8, 1, 500*smartharvest.Millisecond), nil
	default:
		return smartharvest.PrimarySpec{}, fmt.Errorf("unknown primary %q", name)
	}
}

func parsePolicy(spec, predictor string) (smartharvest.ControllerFactory, error) {
	name, arg, _ := strings.Cut(spec, ":")
	if predictor != "" && name != "smartharvest" {
		return nil, fmt.Errorf("-predictor only applies to -policy smartharvest (got %q)", name)
	}
	n := 0
	if arg != "" {
		v, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("bad policy argument %q: %v", arg, err)
		}
		n = v
	}
	switch name {
	case "smartharvest":
		kind := smartharvest.PredictorCSOAA
		if predictor != "" {
			k, err := smartharvest.ParsePredictor(predictor)
			if err != nil {
				return nil, err
			}
			kind = k
		}
		return smartharvest.NewSmartHarvestPredictor(kind, smartharvest.SmartHarvestOptions{}), nil
	case "fixedbuffer":
		if n == 0 {
			n = 4
		}
		return smartharvest.NewFixedBuffer(n), nil
	case "prevpeak":
		if n == 0 {
			n = 1
		}
		return smartharvest.NewPrevPeak(n, n > 1), nil
	case "ewma":
		return smartharvest.NewEWMA(0.3, 1), nil
	case "noharvest":
		return smartharvest.NewNoHarvest(), nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}

func fmtNS(ns int64) string { return sim.Time(ns).String() }

func main() {
	var primaries primaryList
	flag.Var(&primaries, "primary", "primary workload as name[:qps]; repeatable (default memcached:40000)")
	policy := flag.String("policy", "smartharvest", "harvesting policy: smartharvest, fixedbuffer[:k], prevpeak[:n], ewma, noharvest")
	predictor := flag.String("predictor", "", fmt.Sprintf("peak predictor for -policy smartharvest: %s (default csoaa)",
		strings.Join(smartharvest.PredictorNames(), ", ")))
	batch := flag.String("batch", "cpubully", "ElasticVM workload: cpubully, hdinsight, terasort, finite, none")
	batchWork := flag.Duration("batch-work", 8*time.Second, "finite batch allotment in core-time (-batch finite)")
	batchWidth := flag.Int("batch-width", 0, "finite batch parallelism cap in cores, 0 = all (-batch finite)")
	mechanism := flag.String("mechanism", "cpugroups", "core reassignment mechanism: cpugroups or ipis")
	duration := flag.Duration("duration", 30*time.Second, "measured simulated time")
	warmup := flag.Duration("warmup", 2*time.Second, "simulated warmup")
	seed := flag.Uint64("seed", 1, "RNG seed")
	guard := flag.Bool("long-term-safeguard", true, "enable the long-term QoS safeguard")
	speedup := flag.Bool("speedup", false, "also run a NoHarvest baseline and report the batch speedup")
	faultSpec := flag.String("faults", "", "fault-injection plan as key=value pairs, e.g. hfail=0.05,drop=0.01,stall=0.001,stalldur=60ms (keys: hfail, hdelay, drop, stale, noise, stall, crash, hdelaymean, hdelayp99, stalldur, restartdur, losemodel; fleet keys scrash, gdrop, gdelay, rstale, rloss need a multi-server fleet and are rejected here)")
	poolSpec := flag.String("pools", "", "harvested-capacity pool plan, e.g. 'overcommit=1.5;name=acme,tier=standard,reserved=4' (pools need a multi-server fleet and are rejected here; use cmd/experiments -pools)")
	trace := flag.String("trace", "", "write a JSONL event trace of the run to this file (poll samples included)")
	checkRun := flag.Bool("check", false, "verify the run against the safety invariants and print the report (exit 1 on violation)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "smartharvest: %v\n", err)
		os.Exit(1)
	}

	if len(primaries) == 0 {
		primaries = primaryList{"memcached:40000"}
	}
	var specs []smartharvest.PrimarySpec
	for _, p := range primaries {
		spec, err := parsePrimary(p)
		if err != nil {
			fail(err)
		}
		specs = append(specs, spec)
	}
	ctrl, err := parsePolicy(*policy, *predictor)
	if err != nil {
		fail(err)
	}
	batchKind, err := smartharvest.ParseBatchKind(*batch)
	if err != nil {
		fail(err)
	}
	mech, err := smartharvest.ParseMechanism(*mechanism)
	if err != nil {
		fail(err)
	}
	plan, err := smartharvest.ParseFaultPlan(*faultSpec)
	if err != nil {
		fail(err)
	}
	pools, err := smartharvest.ParsePools(*poolSpec)
	if err != nil {
		fail(err)
	}

	s := smartharvest.Scenario{
		Name:              "cli",
		Primaries:         specs,
		Batch:             batchKind,
		BatchWork:         sim.Duration(*batchWork),
		BatchWidth:        *batchWidth,
		Mechanism:         mech,
		Controller:        ctrl,
		Duration:          sim.Duration(*duration),
		Warmup:            sim.Duration(*warmup),
		Seed:              *seed,
		LongTermSafeguard: *guard,
		Faults:            plan,
		Pools:             pools,
	}

	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fail(err)
		}
		sink := smartharvest.TraceWriter(f)
		defer func() {
			if err := sink.Flush(); err != nil {
				fail(err)
			}
			if err := f.Close(); err != nil {
				fail(err)
			}
		}()
		s.Observer = sink
	}

	var checker *smartharvest.Checker
	if *checkRun {
		// With -speedup, only the harvesting run is verified: the baseline
		// scenario drops the checker (one checker verifies one run).
		checker = smartharvest.NewChecker()
		s.Checker = checker
	}

	start := time.Now()
	var res *smartharvest.Result
	if *speedup {
		sp, with, baseline, err := smartharvest.RunSpeedup(s)
		if err != nil {
			fail(err)
		}
		res = with
		fmt.Printf("batch speedup: %.2fx (%v with harvesting vs %v on the ElasticVM minimum)\n",
			sp, with.BatchTime, baseline.BatchTime)
	} else {
		res, err = smartharvest.Run(s)
		if err != nil {
			fail(err)
		}
	}

	fmt.Printf("policy=%s mechanism=%s simulated=%v wall=%v\n",
		res.Policy, res.Mechanism, res.Duration, time.Since(start).Round(time.Millisecond))
	for _, p := range res.Primaries {
		fmt.Printf("primary %-18s requests=%-9d P50=%-12s P95=%-12s P99=%-12s P99.9=%s\n",
			p.Name, p.Completed, fmtNS(p.Latency.P50), fmtNS(p.Latency.P95),
			fmtNS(p.Latency.P99), fmtNS(p.Latency.P999))
	}
	fmt.Printf("harvested: avg %.2f cores (elastic avg %.2f incl. minimum); elastic executed %.1f core-seconds\n",
		res.AvgHarvestedCores, res.AvgElasticCores, res.ElasticCPUSeconds)
	if res.BatchFinished {
		fmt.Printf("batch finished at %v\n", res.BatchTime)
	}
	if batchKind == smartharvest.BatchFinite {
		fmt.Printf("finite batch progress: %v of %v core-time\n",
			res.BatchProgress, sim.Duration(*batchWork))
	}
	fmt.Printf("agent: %d windows, %d resizes, %d short-term safeguards, %d QoS trips\n",
		res.Windows, res.Resizes, res.Safeguards, res.QoSTrips)
	fmt.Printf("reassignment: grow P99 %s, shrink P99 %s\n",
		fmtNS(res.Grow.P99), fmtNS(res.Shrink.P99))
	if plan.Enabled() {
		fmt.Printf("faults: %d injected (%s); %d retries, %d aborted resizes, %d missed windows, %d stalls, %d crashes\n",
			res.FaultsInjected, plan, res.ResizeRetries, res.ResizesAborted,
			res.MissedWindows, res.Stalls, res.Crashes)
		fmt.Printf("degradation: %d entries; degraded at end of run: %v\n",
			res.Degradations, res.Degraded)
	}
	if res.Check != nil {
		fmt.Print(res.Check)
		if !res.Check.OK() {
			os.Exit(1)
		}
	}
}
