package main

import (
	"testing"

	"smartharvest"
)

func TestParsePrimary(t *testing.T) {
	cases := []struct {
		in      string
		name    string
		qps     float64
		wantErr bool
	}{
		{"memcached:40000", "memcached", 40000, false},
		{"memcached", "memcached", 40000, false}, // default load
		{"indexserve:500", "indexserve", 500, false},
		{"moses", "moses", 400, false},
		{"img-dnn:2000", "img-dnn", 2000, false},
		{"memcached-swing", "memcached-swing", 60000, false},
		{"squarewave", "squarewave", 0, false},
		{"nope", "", 0, true},
		{"memcached:abc", "", 0, true},
	}
	for _, c := range cases {
		spec, err := parsePrimary(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("parsePrimary(%q) accepted", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parsePrimary(%q): %v", c.in, err)
			continue
		}
		if spec.Name != c.name {
			t.Errorf("parsePrimary(%q) name %q, want %q", c.in, spec.Name, c.name)
		}
		if c.qps != 0 && spec.QPS != c.qps {
			t.Errorf("parsePrimary(%q) qps %v, want %v", c.in, spec.QPS, c.qps)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	good := map[string]string{
		"smartharvest":  "smartharvest",
		"fixedbuffer":   "fixedbuffer-4",
		"fixedbuffer:7": "fixedbuffer-7",
		"prevpeak":      "prevpeak",
		"prevpeak:10":   "prevpeak10",
		"ewma":          "ewma",
		"noharvest":     "noharvest",
	}
	for in, want := range good {
		f, err := parsePolicy(in, "")
		if err != nil {
			t.Errorf("parsePolicy(%q): %v", in, err)
			continue
		}
		if got := f(10).Name(); got != want {
			t.Errorf("parsePolicy(%q) -> %q, want %q", in, got, want)
		}
	}
	for _, bad := range []string{"nope", "fixedbuffer:x"} {
		if _, err := parsePolicy(bad, ""); err == nil {
			t.Errorf("parsePolicy(%q) accepted", bad)
		}
	}
}

func TestParsePolicyPredictor(t *testing.T) {
	for _, name := range smartharvest.PredictorNames() {
		f, err := parsePolicy("smartharvest", name)
		if err != nil {
			t.Errorf("parsePolicy(smartharvest, %q): %v", name, err)
			continue
		}
		if got := f(10).Name(); got != "smartharvest" {
			t.Errorf("parsePolicy(smartharvest, %q) -> controller %q", name, got)
		}
	}
	if _, err := parsePolicy("smartharvest", "nope"); err == nil {
		t.Error("parsePolicy accepted an unknown predictor")
	}
	if _, err := parsePolicy("ewma", "mlp"); err == nil {
		t.Error("parsePolicy accepted -predictor with a non-smartharvest policy")
	}
}

func TestParseBatch(t *testing.T) {
	for _, in := range []string{"cpubully", "hdinsight", "terasort", "none"} {
		kind, err := smartharvest.ParseBatchKind(in)
		if err != nil {
			t.Errorf("ParseBatchKind(%q): %v", in, err)
			continue
		}
		if kind.String() != in {
			t.Errorf("ParseBatchKind(%q).String() = %q", in, kind.String())
		}
	}
	if _, err := smartharvest.ParseBatchKind("nope"); err == nil {
		t.Error("ParseBatchKind accepted junk")
	}
}
