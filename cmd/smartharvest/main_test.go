package main

import (
	"strings"
	"testing"

	"smartharvest"
)

func TestParsePrimary(t *testing.T) {
	cases := []struct {
		in      string
		name    string
		qps     float64
		wantErr bool
	}{
		{"memcached:40000", "memcached", 40000, false},
		{"memcached", "memcached", 40000, false}, // default load
		{"indexserve:500", "indexserve", 500, false},
		{"moses", "moses", 400, false},
		{"img-dnn:2000", "img-dnn", 2000, false},
		{"memcached-swing", "memcached-swing", 60000, false},
		{"squarewave", "squarewave", 0, false},
		{"nope", "", 0, true},
		{"memcached:abc", "", 0, true},
	}
	for _, c := range cases {
		spec, err := parsePrimary(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("parsePrimary(%q) accepted", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parsePrimary(%q): %v", c.in, err)
			continue
		}
		if spec.Name != c.name {
			t.Errorf("parsePrimary(%q) name %q, want %q", c.in, spec.Name, c.name)
		}
		if c.qps != 0 && spec.QPS != c.qps {
			t.Errorf("parsePrimary(%q) qps %v, want %v", c.in, spec.QPS, c.qps)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	good := map[string]string{
		"smartharvest":  "smartharvest",
		"fixedbuffer":   "fixedbuffer-4",
		"fixedbuffer:7": "fixedbuffer-7",
		"prevpeak":      "prevpeak",
		"prevpeak:10":   "prevpeak10",
		"ewma":          "ewma",
		"noharvest":     "noharvest",
	}
	for in, want := range good {
		f, err := parsePolicy(in, "")
		if err != nil {
			t.Errorf("parsePolicy(%q): %v", in, err)
			continue
		}
		if got := f(10).Name(); got != want {
			t.Errorf("parsePolicy(%q) -> %q, want %q", in, got, want)
		}
	}
	for _, bad := range []string{"nope", "fixedbuffer:x"} {
		if _, err := parsePolicy(bad, ""); err == nil {
			t.Errorf("parsePolicy(%q) accepted", bad)
		}
	}
}

func TestParsePolicyPredictor(t *testing.T) {
	for _, name := range smartharvest.PredictorNames() {
		f, err := parsePolicy("smartharvest", name)
		if err != nil {
			t.Errorf("parsePolicy(smartharvest, %q): %v", name, err)
			continue
		}
		if got := f(10).Name(); got != "smartharvest" {
			t.Errorf("parsePolicy(smartharvest, %q) -> controller %q", name, got)
		}
	}
	if _, err := parsePolicy("smartharvest", "nope"); err == nil {
		t.Error("parsePolicy accepted an unknown predictor")
	}
	if _, err := parsePolicy("ewma", "mlp"); err == nil {
		t.Error("parsePolicy accepted -predictor with a non-smartharvest policy")
	}
}

// TestParseFaultPlanRoundTrip pins the -faults CLI syntax: every plan a
// user can type — agent keys, fleet keys, and mixes — must survive
// parse → String → parse unchanged.
func TestParseFaultPlanRoundTrip(t *testing.T) {
	empty, err := smartharvest.ParseFaultPlan("")
	if err != nil {
		t.Fatalf("ParseFaultPlan(\"\"): %v", err)
	}
	if empty != (smartharvest.FaultPlan{}) || empty.String() != "none" {
		t.Errorf("empty spec parsed to %+v (%q), want the zero plan rendered as \"none\"", empty, empty)
	}
	cases := []string{
		"hfail=0.05,drop=0.01",
		"stall=0.001,stalldur=60ms",
		"crash=0.002,restartdur=250ms,losemodel=true",
		"scrash=0.002,srestartdur=300ms",
		"gdrop=0.2,gdelay=0.1,gdelaydur=5ms",
		"rstale=0.1,rloss=0.05",
		"hfail=0.02,stale=0.01,scrash=0.001,gdrop=0.25,rstale=0.3,rloss=0.1",
	}
	for _, in := range cases {
		plan, err := smartharvest.ParseFaultPlan(in)
		if err != nil {
			t.Errorf("ParseFaultPlan(%q): %v", in, err)
			continue
		}
		again, err := smartharvest.ParseFaultPlan(plan.String())
		if err != nil {
			t.Errorf("ParseFaultPlan(%q).String() = %q does not reparse: %v", in, plan.String(), err)
			continue
		}
		if again != plan {
			t.Errorf("ParseFaultPlan(%q) round-trip changed the plan:\n first %+v\nsecond %+v", in, plan, again)
		}
	}
}

// TestParseFaultPlanRejectsGarbage pins the rejection side: malformed
// pairs, unknown keys, and out-of-range values must error rather than
// silently injecting nothing.
func TestParseFaultPlanRejectsGarbage(t *testing.T) {
	cases := []string{
		"nope=1",           // unknown key
		"scrash",           // no value
		"scrash=",          // empty value
		"scrash=abc",       // not a number
		"scrash=-0.1",      // negative probability
		"gdrop=1.5",        // probability above 1
		"rloss=2",          // probability above 1
		"srestartdur=5",    // duration without a unit
		"srestartdur=-1ms", // negative duration
		"gdelaydur=xyz",    // unparsable duration
		"losemodel=maybe",  // not a bool
		"scrash=0.1,,",     // empty pair
		"=0.5",             // empty key
	}
	for _, in := range cases {
		if _, err := smartharvest.ParseFaultPlan(in); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted garbage", in)
		}
	}
}

func TestParseBatch(t *testing.T) {
	for _, in := range []string{"cpubully", "hdinsight", "terasort", "none"} {
		kind, err := smartharvest.ParseBatchKind(in)
		if err != nil {
			t.Errorf("ParseBatchKind(%q): %v", in, err)
			continue
		}
		if kind.String() != in {
			t.Errorf("ParseBatchKind(%q).String() = %q", in, kind.String())
		}
	}
	if _, err := smartharvest.ParseBatchKind("nope"); err == nil {
		t.Error("ParseBatchKind accepted junk")
	}
}

// TestParsePoolsRoundTrip pins the -pools CLI syntax: every plan a user
// can type must survive parse → String → parse with an identical
// rendering (String emits only non-zero keys, so the canonical form is
// stable even when the input spelled values differently).
func TestParsePoolsRoundTrip(t *testing.T) {
	empty, err := smartharvest.ParsePools("")
	if err != nil {
		t.Fatalf("ParsePools(\"\"): %v", err)
	}
	if empty.Enabled() || empty.String() != "none" {
		t.Errorf("empty spec parsed to %q (enabled=%v), want the disabled plan rendered as \"none\"", empty, empty.Enabled())
	}
	cases := []string{
		"name=acme,tier=spot,reserved=4",
		"overcommit=1.5;name=acme,tier=standard,reserved=4,price=2",
		"name=a,tier=spot,reserved=2;name=b,tier=premium,reserved=1,size=90s,at=3s",
		"overcommit=2", // overcommit without pools: valid, still disabled
		"name=big,tier=standard,reserved=16,size=10m,price=0.5,at=1.5s",
	}
	for _, in := range cases {
		plan, err := smartharvest.ParsePools(in)
		if err != nil {
			t.Errorf("ParsePools(%q): %v", in, err)
			continue
		}
		again, err := smartharvest.ParsePools(plan.String())
		if err != nil {
			t.Errorf("ParsePools(%q).String() = %q does not reparse: %v", in, plan.String(), err)
			continue
		}
		if again.String() != plan.String() {
			t.Errorf("ParsePools(%q) round-trip changed the plan:\n first %q\nsecond %q", in, plan, again)
		}
	}
}

// TestParsePoolsRejectsGarbage pins the rejection side: malformed
// pairs, unknown keys, and out-of-range values must error rather than
// silently opening nothing.
func TestParsePoolsRejectsGarbage(t *testing.T) {
	cases := []string{
		"bogus=1",                            // unknown key
		"name=a",                             // pool without tier/reserved
		"name=,tier=spot,reserved=1",         // empty name
		"name=a,tier=gold,reserved=1",        // unknown tier
		"name=a,tier=spot,reserved=0",        // non-positive reservation
		"name=a,tier=spot,reserved=-2",       // negative reservation
		"name=a,tier=spot reserved=2",        // missing '='
		"name=a,tier=spot,reserved=two",      // not a number
		"name=a,tier=spot,reserved=1,size=5", // duration without a unit
		"name=a,tier=spot,reserved=1,at=-1s", // negative time
		"overcommit=nope",                    // not a number
		"overcommit=-1",                      // negative overcommit
		"name=a,tier=spot,reserved=1;name=a,tier=spot,reserved=1", // duplicate name
	}
	for _, in := range cases {
		if _, err := smartharvest.ParsePools(in); err == nil {
			t.Errorf("ParsePools(%q) accepted garbage", in)
		}
	}
}

// TestRunRejectsPoolPlan pins the single-server gate this command
// relies on: a non-empty -pools plan must fail the run with a clear
// error (pools ride on the multi-server fleet scheduler), not be
// silently ignored.
func TestRunRejectsPoolPlan(t *testing.T) {
	pools, err := smartharvest.ParsePools("name=acme,tier=spot,reserved=2")
	if err != nil {
		t.Fatalf("ParsePools: %v", err)
	}
	s := smartharvest.Scenario{
		Name:       "cli-pools",
		Primaries:  []smartharvest.PrimarySpec{smartharvest.Memcached(40000)},
		Controller: smartharvest.NewFixedBuffer(4),
		Duration:   smartharvest.Second,
		Seed:       1,
		Pools:      pools,
	}
	if _, err := smartharvest.Run(s); err == nil {
		t.Fatal("Run accepted a pool plan on a single-server scenario")
	} else if want := "pool plan"; !strings.Contains(err.Error(), want) {
		t.Errorf("Run error %q does not mention %q", err, want)
	}
}
